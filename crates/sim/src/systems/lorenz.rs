//! The Lorenz system (Section VII-A), notable for its chaotic solutions.
//!
//! Ensemble parameters, as in the paper: the initial `z` coordinate and the
//! three system parameters `σ, β, ρ`.

use crate::ensemble::EnsembleSystem;
use crate::integrator::{integrate, DynamicalSystem, Trajectory};
use crate::space::{ParamAxis, ParameterSpace, TimeGrid};

/// Ensemble-level description of the Lorenz-63 system.
#[derive(Debug, Clone, Copy)]
pub struct Lorenz {
    /// Fixed initial `x` coordinate.
    pub x0: f64,
    /// Fixed initial `y` coordinate.
    pub y0: f64,
}

impl Default for Lorenz {
    fn default() -> Self {
        Self { x0: 1.0, y0: 1.0 }
    }
}

struct Dynamics {
    sigma: f64,
    beta: f64,
    rho: f64,
}

impl DynamicalSystem for Dynamics {
    fn dim(&self) -> usize {
        3
    }

    fn derivative(&self, _t: f64, s: &[f64], out: &mut [f64]) {
        let (x, y, z) = (s[0], s[1], s[2]);
        out[0] = self.sigma * (y - x);
        out[1] = x * (self.rho - z) - y;
        out[2] = x * y - self.beta * z;
    }
}

impl EnsembleSystem for Lorenz {
    fn name(&self) -> &'static str {
        "lorenz"
    }

    fn param_names(&self) -> Vec<&'static str> {
        vec!["z0", "sigma", "beta", "rho"]
    }

    fn default_space(&self, resolution: usize) -> ParameterSpace {
        ParameterSpace::new(vec![
            ParamAxis::linspace("z0", 10.0, 30.0, resolution),
            ParamAxis::linspace("sigma", 8.0, 12.0, resolution),
            ParamAxis::linspace("beta", 2.0, 3.3, resolution),
            ParamAxis::linspace("rho", 20.0, 35.0, resolution),
        ])
    }

    fn simulate(&self, params: &[f64], grid: &TimeGrid) -> Trajectory {
        debug_assert_eq!(params.len(), 4);
        let dyn_sys = Dynamics {
            sigma: params[1],
            beta: params[2],
            rho: params[3],
        };
        let initial = [self.x0, self.y0, params[0]];
        integrate(
            &dyn_sys,
            &initial,
            0.0,
            grid.sample_dt(),
            grid.steps,
            grid.substeps,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_point_at_origin_attracts_for_small_rho() {
        // For rho < 1 the origin is globally stable.
        let sys = Lorenz::default();
        let traj = sys.simulate(&[0.5, 10.0, 8.0 / 3.0, 0.5], &TimeGrid::new(30.0, 10, 200));
        let last = traj.state(traj.len() - 1);
        let norm = (last[0] * last[0] + last[1] * last[1] + last[2] * last[2]).sqrt();
        assert!(norm < 1e-3, "state should decay to origin, norm {norm}");
    }

    #[test]
    fn classic_parameters_stay_bounded() {
        let sys = Lorenz::default();
        let traj = sys.simulate(
            &[25.0, 10.0, 8.0 / 3.0, 28.0],
            &TimeGrid::new(10.0, 100, 50),
        );
        for k in 0..traj.len() {
            for v in traj.state(k) {
                assert!(v.is_finite() && v.abs() < 100.0, "diverged at {k}: {v}");
            }
        }
    }

    #[test]
    fn sensitive_dependence_on_initial_conditions() {
        // Chaos: tiny z0 perturbations grow large over time.
        let sys = Lorenz::default();
        let grid = TimeGrid::new(25.0, 50, 100);
        let a = sys.simulate(&[25.0, 10.0, 8.0 / 3.0, 28.0], &grid);
        let b = sys.simulate(&[25.0001, 10.0, 8.0 / 3.0, 28.0], &grid);
        let early = a.state_distance(&b, 1);
        let late = a.state_distance(&b, a.len() - 1);
        assert!(early < 1e-2);
        assert!(late > 0.5, "no chaotic divergence: late distance {late}");
    }

    #[test]
    fn metadata() {
        let sys = Lorenz::default();
        assert_eq!(sys.param_names(), vec!["z0", "sigma", "beta", "rho"]);
        assert_eq!(sys.default_space(3).resolutions(), vec![3, 3, 3, 3]);
    }
}
