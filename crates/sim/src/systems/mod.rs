//! The dynamic processes used in the paper's evaluation, plus the epidemic
//! model motivating its introduction.
//!
//! Each system implements [`crate::EnsembleSystem`]: it names its four
//! ensemble parameters, provides default grids for them, and simulates one
//! parameter combination into a [`crate::Trajectory`].

mod double_pendulum;
mod lorenz;
mod rossler;
mod sir;
mod triple_pendulum;

pub use double_pendulum::DoublePendulum;
pub use lorenz::Lorenz;
pub use rossler::Rossler;
pub use sir::Sir;
pub use triple_pendulum::TriplePendulum;
