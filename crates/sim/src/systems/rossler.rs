//! The Rössler system — a second chaotic attractor beyond the paper's
//! Lorenz evaluation, added so the reproduction can check that the
//! M2TD-vs-conventional ordering is not an artifact of one particular
//! chaotic flow.
//!
//! `ẋ = −y − z`, `ẏ = x + a y`, `ż = b + z (x − c)`. Ensemble parameters:
//! the initial `x₀` coordinate and the system parameters `a, b, c`.

use crate::ensemble::EnsembleSystem;
use crate::integrator::{integrate, DynamicalSystem, Trajectory};
use crate::space::{ParamAxis, ParameterSpace, TimeGrid};

/// Ensemble-level description of the Rössler system.
#[derive(Debug, Clone, Copy)]
pub struct Rossler {
    /// Fixed initial `y` coordinate.
    pub y0: f64,
    /// Fixed initial `z` coordinate.
    pub z0: f64,
}

impl Default for Rossler {
    fn default() -> Self {
        Self { y0: 1.0, z0: 1.0 }
    }
}

struct Dynamics {
    a: f64,
    b: f64,
    c: f64,
}

impl DynamicalSystem for Dynamics {
    fn dim(&self) -> usize {
        3
    }

    fn derivative(&self, _t: f64, s: &[f64], out: &mut [f64]) {
        let (x, y, z) = (s[0], s[1], s[2]);
        out[0] = -y - z;
        out[1] = x + self.a * y;
        out[2] = self.b + z * (x - self.c);
    }
}

impl EnsembleSystem for Rossler {
    fn name(&self) -> &'static str {
        "rossler"
    }

    fn param_names(&self) -> Vec<&'static str> {
        vec!["x0", "a", "b", "c"]
    }

    fn default_space(&self, resolution: usize) -> ParameterSpace {
        ParameterSpace::new(vec![
            ParamAxis::linspace("x0", -5.0, 5.0, resolution),
            ParamAxis::linspace("a", 0.1, 0.3, resolution),
            ParamAxis::linspace("b", 0.1, 0.3, resolution),
            ParamAxis::linspace("c", 4.0, 8.0, resolution),
        ])
    }

    fn simulate(&self, params: &[f64], grid: &TimeGrid) -> Trajectory {
        debug_assert_eq!(params.len(), 4);
        let dyn_sys = Dynamics {
            a: params[1],
            b: params[2],
            c: params[3],
        };
        let initial = [params[0], self.y0, self.z0];
        integrate(
            &dyn_sys,
            &initial,
            0.0,
            grid.sample_dt(),
            grid.steps,
            grid.substeps,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_parameters_stay_bounded() {
        let sys = Rossler::default();
        let traj = sys.simulate(&[1.0, 0.2, 0.2, 5.7], &TimeGrid::new(50.0, 100, 50));
        for k in 0..traj.len() {
            for v in traj.state(k) {
                assert!(v.is_finite() && v.abs() < 60.0, "diverged at {k}: {v}");
            }
        }
    }

    #[test]
    fn attractor_is_reached_and_oscillates() {
        // On the attractor, x changes sign repeatedly.
        let sys = Rossler::default();
        let traj = sys.simulate(&[1.0, 0.2, 0.2, 5.7], &TimeGrid::new(100.0, 200, 50));
        let mut sign_changes = 0;
        for k in 100..traj.len() {
            if traj.state(k)[0].signum() != traj.state(k - 1)[0].signum() {
                sign_changes += 1;
            }
        }
        assert!(sign_changes > 5, "only {sign_changes} oscillations");
    }

    #[test]
    fn sensitive_dependence() {
        let sys = Rossler::default();
        // Rossler's largest Lyapunov exponent is small (~0.07), so give
        // the perturbation a long horizon to grow.
        let grid = TimeGrid::new(150.0, 150, 50);
        let a = sys.simulate(&[1.0, 0.2, 0.2, 5.7], &grid);
        let b = sys.simulate(&[1.001, 0.2, 0.2, 5.7], &grid);
        let late = a.state_distance(&b, a.len() - 1);
        assert!(late > 0.5, "no chaotic divergence: {late}");
    }

    #[test]
    fn every_parameter_matters() {
        let sys = Rossler::default();
        let grid = TimeGrid::new(10.0, 20, 40);
        let base = sys.simulate(&[1.0, 0.2, 0.2, 5.7], &grid);
        let deltas = [1.0, 0.05, 0.05, 1.0];
        for p in 0..4 {
            let mut params = [1.0, 0.2, 0.2, 5.7];
            params[p] += deltas[p];
            let other = sys.simulate(&params, &grid);
            assert!(
                base.state_distance(&other, base.len() - 1) > 1e-4,
                "parameter {p} had no effect"
            );
        }
    }

    #[test]
    fn metadata() {
        let sys = Rossler::default();
        assert_eq!(sys.name(), "rossler");
        assert_eq!(sys.param_names(), vec!["x0", "a", "b", "c"]);
        assert_eq!(sys.default_space(5).num_configs(), 625);
    }
}
