//! SIR epidemic model with vaccination.
//!
//! The paper's introduction motivates ensemble simulation with epidemic
//! spread tools (STEM). This model is the example-application counterpart:
//! a normalized SIR compartment model whose four ensemble parameters are
//! the transmission rate `β`, the recovery rate `γ`, the initial infected
//! fraction `i₀`, and a vaccination rate `ν` (an intervention knob decision
//! makers sweep in scenario studies).
//!
//! State `(S, I, R)` as population fractions:
//! `Ṡ = −β S I − ν S`, `İ = β S I − γ I`, `Ṙ = γ I + ν S`.

use crate::ensemble::EnsembleSystem;
use crate::integrator::{integrate, DynamicalSystem, Trajectory};
use crate::space::{ParamAxis, ParameterSpace, TimeGrid};

/// Ensemble-level description of the SIR model.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sir;

struct Dynamics {
    beta: f64,
    gamma: f64,
    nu: f64,
}

impl DynamicalSystem for Dynamics {
    fn dim(&self) -> usize {
        3
    }

    fn derivative(&self, _t: f64, s: &[f64], out: &mut [f64]) {
        let (sus, inf, _rec) = (s[0], s[1], s[2]);
        let new_infections = self.beta * sus * inf;
        let vaccinated = self.nu * sus;
        out[0] = -new_infections - vaccinated;
        out[1] = new_infections - self.gamma * inf;
        out[2] = self.gamma * inf + vaccinated;
    }
}

impl EnsembleSystem for Sir {
    fn name(&self) -> &'static str {
        "sir"
    }

    fn param_names(&self) -> Vec<&'static str> {
        vec!["beta", "gamma", "i0", "nu"]
    }

    fn default_space(&self, resolution: usize) -> ParameterSpace {
        ParameterSpace::new(vec![
            ParamAxis::linspace("beta", 0.15, 0.6, resolution),
            ParamAxis::linspace("gamma", 0.05, 0.25, resolution),
            ParamAxis::linspace("i0", 0.001, 0.05, resolution),
            ParamAxis::linspace("nu", 0.0, 0.05, resolution),
        ])
    }

    fn simulate(&self, params: &[f64], grid: &TimeGrid) -> Trajectory {
        debug_assert_eq!(params.len(), 4);
        let dyn_sys = Dynamics {
            beta: params[0],
            gamma: params[1],
            nu: params[3],
        };
        let i0 = params[2];
        let initial = [1.0 - i0, i0, 0.0];
        integrate(
            &dyn_sys,
            &initial,
            0.0,
            grid.sample_dt(),
            grid.steps,
            grid.substeps,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> TimeGrid {
        TimeGrid::new(100.0, 20, 20)
    }

    #[test]
    fn population_is_conserved() {
        let traj = Sir.simulate(&[0.4, 0.1, 0.01, 0.01], &grid());
        for k in 0..traj.len() {
            let s = traj.state(k);
            let total = s[0] + s[1] + s[2];
            assert!((total - 1.0).abs() < 1e-9, "population leaked: {total}");
        }
    }

    #[test]
    fn compartments_stay_nonnegative() {
        let traj = Sir.simulate(&[0.6, 0.05, 0.05, 0.05], &grid());
        for k in 0..traj.len() {
            for v in traj.state(k) {
                assert!(*v > -1e-9, "negative compartment {v}");
            }
        }
    }

    #[test]
    fn epidemic_grows_when_r0_above_one() {
        // beta/gamma = 4 with no vaccination: infections must first rise.
        let traj = Sir.simulate(&[0.4, 0.1, 0.01, 0.0], &grid());
        let peak: f64 = (0..traj.len())
            .map(|k| traj.state(k)[1])
            .fold(0.0, f64::max);
        assert!(peak > 0.1, "epidemic never took off, peak {peak}");
    }

    #[test]
    fn epidemic_dies_when_r0_below_one() {
        let traj = Sir.simulate(&[0.05, 0.25, 0.01, 0.0], &grid());
        let last_infected = traj.state(traj.len() - 1)[1];
        assert!(
            last_infected < 0.005,
            "infections persisted: {last_infected}"
        );
    }

    #[test]
    fn vaccination_reduces_final_size() {
        let no_vax = Sir.simulate(&[0.4, 0.1, 0.01, 0.0], &grid());
        let vax = Sir.simulate(&[0.4, 0.1, 0.01, 0.05], &grid());
        let attack = |t: &Trajectory| t.state(t.len() - 1)[2] + t.state(t.len() - 1)[1];
        // With vaccination, fewer people pass through infection; compare
        // susceptibles never infected: S_end + vaccinated-into-R makes the
        // raw R comparison unfair, so compare peak infections instead.
        let peak = |t: &Trajectory| (0..t.len()).map(|k| t.state(k)[1]).fold(0.0, f64::max);
        assert!(
            peak(&vax) < peak(&no_vax),
            "vaccination did not lower the peak"
        );
        let _ = attack;
    }

    #[test]
    fn metadata() {
        assert_eq!(Sir.param_names(), vec!["beta", "gamma", "i0", "nu"]);
        assert_eq!(Sir.default_space(4).num_configs(), 256);
        assert_eq!(Sir.name(), "sir");
    }
}
