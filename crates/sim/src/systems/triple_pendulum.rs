//! The triple pendulum with variable friction (Section VII-A).
//!
//! Ensemble parameters: the three initial angles `φ₁, φ₂, φ₃` and the
//! system friction `f`. The equations of motion come from the standard
//! `n`-link point-mass chain Lagrangian: `M(θ) θ̈ = b(θ, ω) − f ω`, where
//! the (symmetric positive-definite) mass matrix is
//! `M_ij = (Σ_{k ≥ max(i,j)} m_k) l_i l_j cos(θ_i − θ_j)` and
//! `b_i = −Σ_j (Σ_{k ≥ max(i,j)} m_k) l_i l_j sin(θ_i − θ_j) ω_j²
//!        − (Σ_{k ≥ i} m_k) g l_i sin θ_i`.
//! The 3×3 system is solved per derivative evaluation with the crate's own
//! Cholesky solver.

use crate::ensemble::EnsembleSystem;
use crate::integrator::{integrate, DynamicalSystem, Trajectory};
use crate::space::{ParamAxis, ParameterSpace, TimeGrid};
use m2td_linalg::{solve_spd, Matrix};

/// Ensemble-level description of the damped triple pendulum.
#[derive(Debug, Clone, Copy)]
pub struct TriplePendulum {
    /// Rod lengths.
    pub lengths: [f64; 3],
    /// Bob masses (fixed; the ensemble varies angles and friction).
    pub masses: [f64; 3],
    /// Gravitational acceleration.
    pub g: f64,
}

impl Default for TriplePendulum {
    fn default() -> Self {
        Self {
            lengths: [1.0, 1.0, 1.0],
            masses: [1.0, 1.0, 1.0],
            g: 9.81,
        }
    }
}

struct Dynamics {
    lengths: [f64; 3],
    masses: [f64; 3],
    g: f64,
    friction: f64,
}

impl Dynamics {
    /// `Σ_{k ≥ i} m_k`.
    fn tail_mass(&self, i: usize) -> f64 {
        self.masses[i..].iter().sum()
    }
}

impl DynamicalSystem for Dynamics {
    fn dim(&self) -> usize {
        6
    }

    fn derivative(&self, _t: f64, s: &[f64], out: &mut [f64]) {
        let theta = &s[0..3];
        let omega = &s[3..6];
        let l = &self.lengths;

        let mut m = Matrix::zeros(3, 3);
        let mut b = [0.0f64; 3];
        for i in 0..3 {
            for j in 0..3 {
                let mij = self.tail_mass(i.max(j)) * l[i] * l[j];
                m.set(i, j, mij * (theta[i] - theta[j]).cos());
                b[i] -= mij * (theta[i] - theta[j]).sin() * omega[j] * omega[j];
            }
            b[i] -= self.tail_mass(i) * self.g * l[i] * theta[i].sin();
            b[i] -= self.friction * omega[i];
        }

        let acc = solve_spd(&m, &b).unwrap_or_else(|_| {
            // The mass matrix is SPD for physical masses/lengths; a failed
            // solve can only come from non-finite state. Freeze the system
            // rather than poison the ensemble with NaNs.
            vec![0.0; 3]
        });
        out[0] = omega[0];
        out[1] = omega[1];
        out[2] = omega[2];
        out[3] = acc[0];
        out[4] = acc[1];
        out[5] = acc[2];
    }
}

impl EnsembleSystem for TriplePendulum {
    fn name(&self) -> &'static str {
        "triple_pendulum"
    }

    fn param_names(&self) -> Vec<&'static str> {
        vec!["phi1", "phi2", "phi3", "friction"]
    }

    fn default_space(&self, resolution: usize) -> ParameterSpace {
        ParameterSpace::new(vec![
            ParamAxis::linspace("phi1", 0.2, 1.2, resolution),
            ParamAxis::linspace("phi2", 0.2, 1.2, resolution),
            ParamAxis::linspace("phi3", 0.2, 1.2, resolution),
            ParamAxis::linspace("friction", 0.0, 0.8, resolution),
        ])
    }

    fn simulate(&self, params: &[f64], grid: &TimeGrid) -> Trajectory {
        debug_assert_eq!(params.len(), 4);
        let dyn_sys = Dynamics {
            lengths: self.lengths,
            masses: self.masses,
            g: self.g,
            friction: params[3],
        };
        let initial = [params[0], params[1], params[2], 0.0, 0.0, 0.0];
        integrate(
            &dyn_sys,
            &initial,
            0.0,
            grid.sample_dt(),
            grid.steps,
            grid.substeps,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> TimeGrid {
        TimeGrid::new(2.0, 10, 100)
    }

    #[test]
    fn friction_damps_the_motion() {
        let sys = TriplePendulum::default();
        let free = sys.simulate(&[0.8, 0.6, 0.4, 0.0], &TimeGrid::new(8.0, 20, 100));
        let damped = sys.simulate(&[0.8, 0.6, 0.4, 2.0], &TimeGrid::new(8.0, 20, 100));
        let speed = |traj: &Trajectory, k: usize| {
            let s = traj.state(k);
            (s[3] * s[3] + s[4] * s[4] + s[5] * s[5]).sqrt()
        };
        let last = free.len() - 1;
        assert!(
            speed(&damped, last) < 0.5 * speed(&free, last).max(0.2),
            "friction did not damp: free {} vs damped {}",
            speed(&free, last),
            speed(&damped, last)
        );
    }

    #[test]
    fn undamped_energy_is_conserved() {
        let sys = TriplePendulum::default();
        let l = sys.lengths;
        let m = sys.masses;
        let g = sys.g;
        let energy = |s: &[f64]| {
            // Cartesian velocities of the three bobs.
            let mut kin = 0.0;
            let mut pot = 0.0;
            let mut vx = 0.0;
            let mut vy = 0.0;
            let mut y = 0.0;
            for i in 0..3 {
                vx += l[i] * s[3 + i] * s[i].cos();
                vy += l[i] * s[3 + i] * s[i].sin();
                y -= l[i] * s[i].cos();
                kin += 0.5 * m[i] * (vx * vx + vy * vy);
                pot += m[i] * g * y;
            }
            kin + pot
        };
        let traj = sys.simulate(&[0.6, 0.4, 0.2, 0.0], &TimeGrid::new(2.0, 20, 400));
        let e0 = energy(traj.state(0));
        let e_end = energy(traj.state(traj.len() - 1));
        assert!(
            (e_end - e0).abs() < 1e-3 * e0.abs().max(1.0),
            "energy drifted {e0} -> {e_end}"
        );
    }

    #[test]
    fn every_parameter_matters() {
        let sys = TriplePendulum::default();
        let base = sys.simulate(&[0.6, 0.5, 0.4, 0.2], &grid());
        for p in 0..4 {
            let mut params = [0.6, 0.5, 0.4, 0.2];
            params[p] += 0.3;
            let other = sys.simulate(&params, &grid());
            assert!(
                base.state_distance(&other, base.len() - 1) > 1e-4,
                "parameter {p} had no effect"
            );
        }
    }

    #[test]
    fn hangs_still_at_zero_angles() {
        let sys = TriplePendulum::default();
        let traj = sys.simulate(&[0.0, 0.0, 0.0, 0.0], &grid());
        for k in 0..traj.len() {
            for v in traj.state(k) {
                assert!(v.abs() < 1e-12);
            }
        }
    }

    #[test]
    fn metadata() {
        let sys = TriplePendulum::default();
        assert_eq!(sys.param_names(), vec!["phi1", "phi2", "phi3", "friction"]);
        assert_eq!(sys.default_space(5).num_configs(), 625);
        assert_eq!(sys.name(), "triple_pendulum");
    }
}
