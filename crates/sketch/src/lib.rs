//! # m2td-sketch — randomized sketching kernels for the M2TD pipeline
//!
//! Exact per-mode factorization (`svd` / `gram_left_singular_vectors`)
//! scales with the full mode dimensions even when the target rank is
//! tiny. This crate provides the randomized alternatives (MACH-style,
//! Tsourakakis 2010; randomized range-finders, Halko–Martinsson–Tropp
//! 2011) the paper's ensemble shapes reward:
//!
//! * [`range_finder`] — a Gaussian randomized range-finder with optional
//!   power iterations and oversampling, producing `r` orthonormal
//!   leading-subspace columns plus a **measured** relative error, as a
//!   drop-in alternative to [`m2td_linalg::truncated_left_singular_vectors`];
//! * [`guarded_left_singular_vectors`] — the same, gated by
//!   [`m2td_guard::with_error_budget`]: if the measured error exceeds the
//!   budget the exact route runs instead and `sketch.fallbacks` is
//!   bumped — accuracy loss is *rejected*, never assumed;
//! * [`counter_gaussian`] / [`gaussian_matrix`] — the deterministic
//!   Gaussian sources backing the sketches (see below);
//! * op-count models ([`exact_factor_madds`], [`sketched_factor_madds`])
//!   mirroring `TtmPlan::predicted_madds`, so routes are chosen on
//!   predicted work, not vibes.
//!
//! Tensor-level sketches (sketched sparse Grams, MACH entry sampling,
//! sketched HOSVD/HOOI) live in `m2td_tensor::sketch`, which builds on
//! these kernels — the dependency points tensor → sketch → linalg.
//!
//! ## Determinism contract
//!
//! Fixed [`SketchConfig::seed`] ⇒ bitwise-identical results at every
//! thread count, matching the `m2td-par` kernels. Two mechanisms:
//!
//! * [`gaussian_matrix`] fills a test matrix *serially* from the in-tree
//!   xoshiro256++ `StdRng`, so a sketch generated once up front is a pure
//!   function of `(seed, rows, cols)`;
//! * [`counter_gaussian`] is a *counter-based* source — a SplitMix64-style
//!   hash of `(seed, a, b)` fed through Box–Muller — whose value is
//!   independent of evaluation order, so streaming accumulations (sparse
//!   `X·Ω` products, MACH keep/drop decisions) are partition-invariant.
//!
//! ## Install idiom
//!
//! Mirrors `m2td-guard`/`m2td-obs`: nothing sketches until [`install`]
//! flips the global flag, and while uninstalled every dispatch site costs
//! one relaxed atomic load and computes the exact route bitwise
//! unchanged.

use m2td_linalg::{
    householder_qr, symmetric_eig, truncated_left_singular_vectors, LinalgError, Matrix,
};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};

/// How a sketched route randomizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SketchPolicy {
    /// Dense Gaussian test matrices: range-finders over unfoldings and
    /// `(XΩ)(XΩ)ᵀ/s` sketched Grams.
    Gaussian,
    /// MACH-style uniform entry sampling: keep each nonzero with
    /// probability `keep`, scale survivors by `1/keep` (Horvitz–Thompson,
    /// unbiased in expectation), then run the exact kernels on the thin
    /// sample.
    Mach {
        /// Per-entry keep probability in `(0, 1]`.
        keep: f64,
    },
    /// MACH sampling biased toward large-magnitude entries
    /// (goal-oriented weighting à la Dunlavy et al.): entry `v` survives
    /// with probability `min(1, keep · |v| / mean|v|)` and is rescaled by
    /// the inverse of that probability, so high-energy regions are kept
    /// preferentially while the estimator stays unbiased.
    MachBiased {
        /// Base keep probability in `(0, 1]`.
        keep: f64,
    },
}

impl SketchPolicy {
    /// The keep probability for the MACH variants, `None` for Gaussian.
    pub fn keep(&self) -> Option<f64> {
        match self {
            SketchPolicy::Gaussian => None,
            SketchPolicy::Mach { keep } | SketchPolicy::MachBiased { keep } => Some(*keep),
        }
    }
}

impl std::str::FromStr for SketchPolicy {
    type Err = String;

    /// Parses `gaussian`, `mach`, `mach:<keep>`, `mach-biased` or
    /// `mach-biased:<keep>`.
    fn from_str(s: &str) -> Result<Self, String> {
        let parse_keep = |spec: &str| -> Result<f64, String> {
            let k: f64 = spec
                .parse()
                .map_err(|_| format!("invalid keep probability '{spec}' in sketch policy"))?;
            if !(k.is_finite() && k > 0.0 && k <= 1.0) {
                return Err(format!("keep probability {k} must lie in (0, 1]"));
            }
            Ok(k)
        };
        match s {
            "gaussian" => Ok(SketchPolicy::Gaussian),
            "mach" => Ok(SketchPolicy::Mach { keep: 0.3 }),
            "mach-biased" => Ok(SketchPolicy::MachBiased { keep: 0.3 }),
            other => {
                if let Some(spec) = other.strip_prefix("mach-biased:") {
                    Ok(SketchPolicy::MachBiased {
                        keep: parse_keep(spec)?,
                    })
                } else if let Some(spec) = other.strip_prefix("mach:") {
                    Ok(SketchPolicy::Mach {
                        keep: parse_keep(spec)?,
                    })
                } else {
                    Err(format!(
                        "unknown sketch policy '{other}' (expected gaussian | mach[:keep] | mach-biased[:keep])"
                    ))
                }
            }
        }
    }
}

impl fmt::Display for SketchPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SketchPolicy::Gaussian => write!(f, "gaussian"),
            SketchPolicy::Mach { keep } => write!(f, "mach:{keep}"),
            SketchPolicy::MachBiased { keep } => write!(f, "mach-biased:{keep}"),
        }
    }
}

/// Configuration installed with [`install`] and threaded through Phase 1,
/// HOSVD/HOOI and the dist path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SketchConfig {
    /// Sketch width `s` (number of random test vectors). Internally
    /// clamped to `[r, min(m, n)]` per call site, so this acts as
    /// `r + oversampling` when larger than the rank.
    pub size: usize,
    /// Seed for every random draw. Fixed seed ⇒ bitwise-identical
    /// results at every thread count.
    pub seed: u64,
    /// Number of power iterations `q` in the range-finder (each one
    /// re-orthonormalizes, so modest `q` is numerically safe).
    pub power_iters: usize,
    /// Randomization scheme.
    pub policy: SketchPolicy,
}

impl SketchConfig {
    /// Defaults: width 8, seed 0x5EED, one power iteration, Gaussian.
    pub const DEFAULT: SketchConfig = SketchConfig {
        size: 8,
        seed: 0x5EED,
        power_iters: 1,
        policy: SketchPolicy::Gaussian,
    };

    /// [`Self::DEFAULT`] with the given sketch width.
    pub fn with_size(size: usize) -> Self {
        Self {
            size,
            ..Self::DEFAULT
        }
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the power-iteration count.
    pub fn with_power_iters(mut self, q: usize) -> Self {
        self.power_iters = q;
        self
    }

    /// Sets the randomization policy.
    pub fn with_policy(mut self, policy: SketchPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The effective sketch width for an `m × n` problem at rank `r`:
    /// at least `r` (a narrower sketch cannot carry the subspace), at
    /// most `min(m, n)` (a wider one adds no information).
    pub fn effective_size(&self, m: usize, n: usize, r: usize) -> usize {
        self.size.max(r).min(m).min(n).max(1)
    }

    /// Derives a per-site seed so different modes/sites draw independent
    /// sketches from one configured seed. Pure function of its inputs —
    /// the derivation is stable across thread counts and processes.
    pub fn seed_for(&self, site: u64) -> u64 {
        splitmix(self.seed ^ site.wrapping_mul(0xA24BAED4963EE407))
    }
}

impl Default for SketchConfig {
    fn default() -> Self {
        Self::DEFAULT
    }
}

/// Default relative-error budget used by guarded sketch routes when the
/// guard is uninstalled or installed without an explicit budget. Sketched
/// results are never accepted unmeasured; this permissive ceiling only
/// rejects sketches that lost the bulk of the signal.
pub const DEFAULT_SKETCH_BUDGET: f64 = 0.75;

/// Global sketch flag; mirrors the `m2td-guard` install idiom.
static INSTALLED: AtomicBool = AtomicBool::new(false);

static CONFIG: Mutex<SketchConfig> = Mutex::new(SketchConfig::DEFAULT);

fn config_slot() -> MutexGuard<'static, SketchConfig> {
    CONFIG.lock().unwrap_or_else(|e| e.into_inner())
}

/// Enables sketched routes globally under `config`. Idempotent; a second
/// call replaces the configuration.
pub fn install(config: SketchConfig) {
    *config_slot() = config;
    INSTALLED.store(true, Ordering::SeqCst);
}

/// Disables sketched routes globally (the configuration is retained but
/// unused); every dispatch site reverts to the exact kernels.
pub fn uninstall() {
    INSTALLED.store(false, Ordering::SeqCst);
}

/// Whether sketching is installed. One relaxed load — the entire
/// overhead of every dispatch site while uninstalled.
#[inline]
pub fn installed() -> bool {
    INSTALLED.load(Ordering::Relaxed)
}

/// The installed configuration (the default when never installed).
pub fn config() -> SketchConfig {
    *config_slot()
}

/// SplitMix64 finalizer: a bijective avalanche mix.
#[inline]
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Counter-based uniform hash of `(seed, a, b)` — a pure function of its
/// arguments, so any evaluation order (or partition across threads)
/// produces the same stream.
#[inline]
pub fn counter_hash(seed: u64, a: u64, b: u64) -> u64 {
    splitmix(seed ^ splitmix(a ^ 0x8E9B_5C4A_D1F2_3E07) ^ splitmix(b).rotate_left(17))
}

/// Uniform in `(0, 1]` from the top 53 bits of a hash (never 0, so it is
/// safe under `ln`).
#[inline]
fn unit_open(h: u64) -> f64 {
    ((h >> 11) as f64 + 1.0) * (1.0 / 9007199254740992.0) // 2⁻⁵³
}

/// Counter-based standard Gaussian: Box–Muller over two decorrelated
/// hashes of `(seed, a, b)`. Deterministic and evaluation-order
/// independent — the backbone of the sparse sketched-Gram kernel.
#[inline]
pub fn counter_gaussian(seed: u64, a: u64, b: u64) -> f64 {
    let u1 = unit_open(counter_hash(seed, a, b));
    let u2 = unit_open(counter_hash(seed ^ 0x6A09_E667_F3BC_C909, b, a));
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Counter-based uniform in `[0, 1)` for keep/drop decisions (MACH).
#[inline]
pub fn counter_uniform(seed: u64, a: u64, b: u64) -> f64 {
    (counter_hash(seed, a, b) >> 11) as f64 * (1.0 / 9007199254740992.0)
}

/// A dense `rows × cols` standard-Gaussian test matrix, filled serially
/// from the in-tree xoshiro256++ `StdRng` — a pure function of
/// `(seed, rows, cols)`.
pub fn gaussian_matrix(seed: u64, rows: usize, cols: usize) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut draw = move || {
        // Box–Muller on xoshiro uniforms; (0,1] keeps ln finite.
        let u1: f64 = 1.0 - rng.gen_range(0.0..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    };
    let mut m = Matrix::zeros(rows, cols);
    for i in 0..rows {
        for j in 0..cols {
            m.set(i, j, draw());
        }
    }
    m
}

/// Result of a randomized range-finder pass.
#[derive(Debug, Clone)]
pub struct RangeFinder {
    /// `m × r` orthonormal leading-subspace estimate.
    pub u: Matrix,
    /// Measured relative error of the rank-`r` approximation
    /// `‖A − U Uᵀ A‖_F / ‖A‖_F`, computed from the energy identity
    /// `‖A‖²_F − ‖Uᵀ A‖²_F` — no dense residual is ever formed.
    pub rel_err: f64,
    /// The effective sketch width used (after clamping).
    pub sketch_size: usize,
}

/// Gaussian randomized range-finder (Halko–Martinsson–Tropp):
/// `Y = A·Ω`, `q` power iterations with QR re-orthonormalization, then a
/// small eigensolve on the sketched Gram recovers the leading `r` left
/// singular directions. A drop-in alternative to
/// [`truncated_left_singular_vectors`] whose cost scales with the sketch
/// width `s`, not the full mode dimension.
///
/// # Errors
///
/// * [`LinalgError::RankTooLarge`] if `r > min(m, n)` (same contract as
///   the exact route);
/// * [`LinalgError::EmptyInput`] for an empty matrix;
/// * any failure of the underlying QR/eig kernels.
pub fn range_finder(a: &Matrix, r: usize, cfg: &SketchConfig) -> Result<RangeFinder, LinalgError> {
    let (m, n) = a.shape();
    if m == 0 || n == 0 {
        return Err(LinalgError::EmptyInput);
    }
    if r == 0 || r > m.min(n) {
        return Err(LinalgError::RankTooLarge {
            requested: r,
            available: m.min(n),
        });
    }
    let _span = m2td_obs::span!("sketch.range_finder");
    let s = cfg.effective_size(m, n, r);
    m2td_obs::gauge_set("sketch.size", s as f64);

    let omega = gaussian_matrix(cfg.seed_for(0x52414E47), n, s); // site tag "RANG"
    let y = a.matmul(&omega)?;
    let mut q = householder_qr(&y)?.q;
    for _ in 0..cfg.power_iters {
        // One subspace-iteration round trip, re-orthonormalized on both
        // legs to stop the columns collapsing onto the top direction.
        let z = householder_qr(&a.transpose_matmul(&q)?)?.q;
        q = householder_qr(&a.matmul(&z)?)?.q;
    }

    // B = Qᵀ A is s × n; its row Gram carries the sketched spectrum.
    let b = q.transpose_matmul(a)?;
    let eig = symmetric_eig(&b.gram_rows())?;
    let u = q.matmul(&eig.eigenvectors.leading_columns(r)?)?;

    // Energy identity: ‖A − U Uᵀ A‖² = ‖A‖² − ‖Uᵀ A‖², where
    // ‖Uᵀ A‖² = Σ_{i≤r} λ_i(BBᵀ) because U's columns are Q·W[:, :r].
    let total = a.frobenius_norm().powi(2);
    let captured: f64 = eig.eigenvalues.iter().take(r).sum();
    let rel_err = if total > 0.0 {
        ((total - captured).max(0.0) / total).sqrt()
    } else {
        0.0
    };
    m2td_obs::gauge_set("sketch.rel_err", rel_err);
    Ok(RangeFinder {
        u,
        rel_err,
        sketch_size: s,
    })
}

/// [`range_finder`] gated by [`m2td_guard::with_error_budget`]: the
/// sketched factor is accepted only if its **measured** relative error
/// fits the budget (the installed guard budget, else
/// [`DEFAULT_SKETCH_BUDGET`]); otherwise the exact
/// [`truncated_left_singular_vectors`] route runs and `sketch.fallbacks`
/// is bumped. Never bumps any `guard.*` counter — a rejected sketch
/// corrupted nothing.
pub fn guarded_left_singular_vectors(
    a: &Matrix,
    r: usize,
    cfg: &SketchConfig,
) -> Result<Matrix, LinalgError> {
    let gated = m2td_guard::with_error_budget(DEFAULT_SKETCH_BUDGET, || {
        let rf = range_finder(a, r, cfg)?;
        Ok((rf.u, rf.rel_err))
    });
    match gated {
        Ok((u, _err, gate)) if gate.accepted() => Ok(u),
        Ok(_) => {
            m2td_obs::counter_add("sketch.fallbacks", 1);
            truncated_left_singular_vectors(a, r)
        }
        Err(m2td_guard::GuardError::Linalg(e)) => Err(e),
        // with_error_budget itself raises nothing beyond the closure's
        // error, and the closure only returns Linalg.
        Err(_) => unreachable!("sketch closure raises only Linalg errors"),
    }
}

// ---------------------------------------------------------------------------
// Op-count models (multiply-adds), mirroring `TtmPlan::predicted_madds`.
// ---------------------------------------------------------------------------

/// Jacobi-sweep count assumed by the op-count models (one-sided Jacobi on
/// well-scattered spectra typically converges in ~10 sweeps).
pub const JACOBI_SWEEPS: u64 = 10;

/// Per-sweep rotation cost factor for the Jacobi kernels (each rotated
/// pair touches both columns ~3 times: dot products + the rotation).
const JACOBI_PAIR_COST: u64 = 3;

/// Predicted madds of the exact truncated-left-singular-vector dispatch
/// for an `m × n` input: the Gram trick (`n·m(m+1)/2` plus an `m × m`
/// Jacobi eigensolve) when `n ≥ m`, a full one-sided Jacobi SVD
/// (`sweeps · 3·m·n²`) otherwise — matching
/// [`truncated_left_singular_vectors`]'s routing.
pub fn exact_factor_madds(m: usize, n: usize) -> u64 {
    let (m, n) = (m as u64, n as u64);
    if n >= m {
        n * m * (m + 1) / 2 + JACOBI_SWEEPS * JACOBI_PAIR_COST * m * m * m
    } else {
        JACOBI_SWEEPS * JACOBI_PAIR_COST * m * n * n
    }
}

/// Predicted madds of [`range_finder`] for an `m × n` input at rank `r`
/// with sketch width `s` and `q` power iterations: the sketch product,
/// the power-iteration round trips with their QR re-orthonormalizations,
/// the small `s × s` eigensolve, and the final basis rotation.
pub fn sketched_factor_madds(m: usize, n: usize, r: usize, s: usize, q: usize) -> u64 {
    let (m, n, r, s, q) = (m as u64, n as u64, r as u64, s as u64, q as u64);
    let sketch = m * n * s; // Y = A·Ω
    let power = q * 2 * m * n * s; // AᵀQ then A·Z per iteration
    let qr = (2 * q + 1) * 2 * m * s * s; // Householder passes
    let small_gram = n * s * (s + 1) / 2; // BBᵀ
    let small_eig = JACOBI_SWEEPS * JACOBI_PAIR_COST * s * s * s;
    let rotate = m * s * r; // U = Q·W[:, :r]
    sketch + power + qr + small_gram + small_eig + rotate + m * n * s // B = QᵀA
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as TestMutex;

    /// Sketch state is process-global; tests that install serialize here.
    static LOCK: TestMutex<()> = TestMutex::new(());

    fn test_matrix(m: usize, n: usize) -> Matrix {
        // Rank-heavy in the leading directions: a few dominant outer
        // products plus a small full-rank tail.
        Matrix::from_fn(m, n, |i, j| {
            let a = ((i as f64) * 0.17).sin() * ((j as f64) * 0.23).cos();
            let b = ((i as f64) * 0.05 + 1.0) * ((j as f64) * 0.07 - 0.5);
            // The tail is a non-separable (full-rank) surface, so no
            // finite rank captures the matrix exactly.
            4.0 * a + 0.8 * b + 0.01 * ((i * j) as f64 * 0.9).sin()
        })
    }

    #[test]
    fn policy_parsing_round_trips() {
        assert_eq!(
            "gaussian".parse::<SketchPolicy>(),
            Ok(SketchPolicy::Gaussian)
        );
        assert_eq!(
            "mach:0.5".parse::<SketchPolicy>(),
            Ok(SketchPolicy::Mach { keep: 0.5 })
        );
        assert_eq!(
            "mach-biased:0.25".parse::<SketchPolicy>(),
            Ok(SketchPolicy::MachBiased { keep: 0.25 })
        );
        assert_eq!(
            "mach".parse::<SketchPolicy>(),
            Ok(SketchPolicy::Mach { keep: 0.3 })
        );
        assert!("mach:1.5".parse::<SketchPolicy>().is_err());
        assert!("mach:0".parse::<SketchPolicy>().is_err());
        assert!("bogus".parse::<SketchPolicy>().is_err());
        for p in [
            SketchPolicy::Gaussian,
            SketchPolicy::Mach { keep: 0.3 },
            SketchPolicy::MachBiased { keep: 0.125 },
        ] {
            assert_eq!(p.to_string().parse::<SketchPolicy>(), Ok(p));
        }
    }

    #[test]
    fn install_round_trip() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        assert!(!installed());
        let cfg = SketchConfig::with_size(16).with_seed(7).with_power_iters(2);
        install(cfg);
        assert!(installed());
        assert_eq!(config(), cfg);
        uninstall();
        assert!(!installed());
    }

    #[test]
    fn counter_sources_are_deterministic_and_spread() {
        assert_eq!(counter_gaussian(1, 2, 3), counter_gaussian(1, 2, 3));
        assert_ne!(counter_gaussian(1, 2, 3), counter_gaussian(2, 2, 3));
        assert_ne!(counter_gaussian(1, 2, 3), counter_gaussian(1, 3, 2));
        // Mean and variance of the counter stream are roughly standard.
        let n = 4000;
        let (mut sum, mut sq) = (0.0, 0.0);
        for i in 0..n {
            let g = counter_gaussian(42, i as u64, (i / 7) as u64);
            sum += g;
            sq += g * g;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.08, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.12, "variance {var} too far from 1");
        for i in 0..100 {
            let u = counter_uniform(9, i, 2 * i);
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gaussian_matrix_is_a_pure_function_of_seed_and_shape() {
        let a = gaussian_matrix(11, 8, 5);
        let b = gaussian_matrix(11, 8, 5);
        assert_eq!(a.as_slice(), b.as_slice());
        let c = gaussian_matrix(12, 8, 5);
        assert_ne!(a.as_slice(), c.as_slice());
    }

    #[test]
    fn range_finder_recovers_dominant_subspace() {
        let a = test_matrix(64, 12);
        let cfg = SketchConfig::with_size(8).with_seed(3);
        let rf = range_finder(&a, 4, &cfg).unwrap();
        assert_eq!(rf.u.shape(), (64, 4));
        assert!(rf.u.orthonormality_defect() < 1e-9);
        // Measured error agrees with the true residual.
        let proj = rf.u.matmul(&rf.u.transpose_matmul(&a).unwrap()).unwrap();
        let true_err = a.sub(&proj).unwrap().frobenius_norm() / a.frobenius_norm();
        assert!(
            (rf.rel_err - true_err).abs() < 1e-8,
            "energy-identity error {} vs residual {}",
            rf.rel_err,
            true_err
        );
        // And it is close to the exact truncated route's error.
        let exact = truncated_left_singular_vectors(&a, 4).unwrap();
        let eproj = exact.matmul(&exact.transpose_matmul(&a).unwrap()).unwrap();
        let exact_err = a.sub(&eproj).unwrap().frobenius_norm() / a.frobenius_norm();
        assert!(
            rf.rel_err <= exact_err + 0.05,
            "sketched error {} much worse than exact {}",
            rf.rel_err,
            exact_err
        );
    }

    #[test]
    fn range_finder_is_seed_deterministic() {
        let a = test_matrix(40, 10);
        let cfg = SketchConfig::with_size(6).with_seed(99);
        let r1 = range_finder(&a, 3, &cfg).unwrap();
        let r2 = range_finder(&a, 3, &cfg).unwrap();
        assert_eq!(r1.u.as_slice(), r2.u.as_slice());
        assert_eq!(r1.rel_err, r2.rel_err);
        let r3 = range_finder(&a, 3, &cfg.with_seed(100)).unwrap();
        assert_ne!(r1.u.as_slice(), r3.u.as_slice());
    }

    #[test]
    fn range_finder_rank_contract_matches_exact_route() {
        let a = test_matrix(6, 2);
        let cfg = SketchConfig::DEFAULT;
        match range_finder(&a, 3, &cfg) {
            Err(LinalgError::RankTooLarge {
                requested,
                available,
            }) => assert_eq!((requested, available), (3, 2)),
            other => panic!("expected RankTooLarge, got {other:?}"),
        }
        assert!(range_finder(&Matrix::zeros(0, 3), 1, &cfg).is_err());
    }

    #[test]
    fn guarded_route_accepts_good_sketches_and_rejects_tiny_ones() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let a = test_matrix(48, 16);
        // Healthy sketch: accepted, factors orthonormal.
        let cfg = SketchConfig::with_size(12).with_seed(5);
        let u = guarded_left_singular_vectors(&a, 4, &cfg).unwrap();
        assert_eq!(u.shape(), (48, 4));
        assert!(u.orthonormality_defect() < 1e-9);

        // A guard with a near-zero budget forces the fallback; the result
        // must be the exact route's, with the fallback counter bumped and
        // no guard.* counter touched.
        m2td_guard::install(m2td_guard::GuardConfig::DEFAULT.with_error_budget(1e-12));
        m2td_obs::install();
        m2td_obs::reset();
        let u2 = guarded_left_singular_vectors(&a, 4, &cfg).unwrap();
        let exact = truncated_left_singular_vectors(&a, 4).unwrap();
        let snap = m2td_obs::snapshot();
        m2td_obs::reset();
        m2td_obs::uninstall();
        m2td_guard::uninstall();
        assert_eq!(u2.as_slice(), exact.as_slice(), "fallback must be exact");
        assert_eq!(snap.counter("sketch.fallbacks"), Some(1));
        assert!(
            !snap.counters.iter().any(|(k, _)| k.starts_with("guard.")),
            "sketch fallback must not bump guard counters: {:?}",
            snap.counters
        );
    }

    #[test]
    fn op_count_model_predicts_sketch_wins_on_tall_skinny() {
        // The bench's tall-skinny unfold shape: the exact route is a full
        // Jacobi SVD, the sketch does a handful of thin GEMMs.
        let (m, n, r, s, q) = (256, 16, 4, 8, 1);
        assert!(
            sketched_factor_madds(m, n, r, s, q) < exact_factor_madds(m, n),
            "sketch {} !< exact {}",
            sketched_factor_madds(m, n, r, s, q),
            exact_factor_madds(m, n)
        );
        // Short-and-wide Gram-trick shapes are already cheap; the dense
        // sketch must honestly predict it does NOT win there.
        assert!(sketched_factor_madds(12, 1728, 4, 8, 1) > exact_factor_madds(12, 1728));
    }

    #[test]
    fn effective_size_clamps_to_problem() {
        let cfg = SketchConfig::with_size(32);
        assert_eq!(cfg.effective_size(256, 16, 4), 16);
        assert_eq!(cfg.effective_size(8, 300, 4), 8);
        assert_eq!(SketchConfig::with_size(2).effective_size(64, 64, 5), 5);
    }

    #[test]
    fn sketch_spans_and_gauges_are_recorded() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        m2td_obs::install();
        m2td_obs::reset();
        let a = test_matrix(32, 12);
        let cfg = SketchConfig::with_size(6).with_seed(1);
        let rf = range_finder(&a, 3, &cfg).unwrap();
        let snap = m2td_obs::snapshot();
        m2td_obs::reset();
        m2td_obs::uninstall();
        assert!(snap.span("sketch.range_finder").is_some());
        assert_eq!(snap.gauge("sketch.size"), Some(6.0));
        assert_eq!(snap.gauge("sketch.rel_err"), Some(rf.rel_err));
    }
}
