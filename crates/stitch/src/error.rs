//! Error type for JE-stitching.

use m2td_tensor::TensorError;
use std::fmt;

/// Errors produced while stitching sub-ensembles.
#[derive(Debug, Clone, PartialEq)]
pub enum StitchError {
    /// `k` must satisfy `1 <= k < min(order(X1), order(X2))`.
    InvalidPivotCount {
        /// The supplied `k`.
        k: usize,
        /// Orders of the two sub-tensors.
        orders: (usize, usize),
    },
    /// The two sub-tensors disagree on a pivot-mode extent.
    PivotDimMismatch {
        /// The offending pivot mode (sub-tensor position).
        mode: usize,
        /// The two extents.
        dims: (usize, usize),
    },
    /// An underlying tensor operation failed.
    Tensor(TensorError),
}

impl fmt::Display for StitchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StitchError::InvalidPivotCount { k, orders } => write!(
                f,
                "pivot count {k} invalid for sub-tensors of orders {} and {}",
                orders.0, orders.1
            ),
            StitchError::PivotDimMismatch { mode, dims } => write!(
                f,
                "pivot mode {mode} has extent {} in X1 but {} in X2",
                dims.0, dims.1
            ),
            StitchError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl std::error::Error for StitchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StitchError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for StitchError {
    fn from(e: TensorError) -> Self {
        StitchError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = StitchError::PivotDimMismatch {
            mode: 0,
            dims: (4, 5),
        };
        assert!(e.to_string().contains('4') && e.to_string().contains('5'));
        use std::error::Error;
        let t: StitchError = TensorError::EmptyTensor.into();
        assert!(t.source().is_some());
    }
}
