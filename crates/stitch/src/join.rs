//! The join and zero-join stitching kernels.

use crate::error::StitchError;
use crate::Result;
use m2td_tensor::{Shape, SparseTensor};
use std::collections::{BTreeSet, HashMap};

/// Which stitching rule to apply (Section V-C.1 vs V-C.2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StitchKind {
    /// Plain join: only pairs where both simulations exist.
    Join,
    /// Zero-join: missing partners are treated as simulations with value 0,
    /// producing `x/2` entries and boosting effective density.
    ZeroJoin,
}

/// Summary statistics of a stitch, used by experiment reports.
#[derive(Debug, Clone, PartialEq)]
pub struct StitchReport {
    /// Number of entries in the join tensor.
    pub join_nnz: usize,
    /// Effective density of the join tensor.
    pub join_density: f64,
    /// Number of pivot configurations present in both sub-ensembles.
    pub shared_pivot_configs: usize,
    /// Input entry counts `(nnz(X1), nnz(X2))`.
    pub input_nnz: (usize, usize),
}

/// Per-sub-tensor index decomposition: entries grouped by pivot
/// configuration, with each entry keyed by its free-lattice linear index.
struct Grouped {
    /// pivot linear index -> (free linear index -> value)
    by_pivot: HashMap<u64, HashMap<u64, f64>>,
    /// All distinct free configurations appearing anywhere.
    free_set: BTreeSet<u64>,
    free_shape: Shape,
}

fn group(x: &SparseTensor, k: usize) -> Grouped {
    let pivot_shape = Shape::new(&x.dims()[..k]);
    let free_shape = Shape::new(&x.dims()[k..]);
    let mut by_pivot: HashMap<u64, HashMap<u64, f64>> = HashMap::new();
    let mut free_set = BTreeSet::new();
    for (idx, v) in x.iter() {
        let p = pivot_shape.linear_index(&idx[..k]) as u64;
        let f = free_shape.linear_index(&idx[k..]) as u64;
        by_pivot.entry(p).or_default().insert(f, v);
        free_set.insert(f);
    }
    Grouped {
        by_pivot,
        free_set,
        free_shape,
    }
}

/// Stitches two sub-ensemble tensors into the join tensor `J`.
///
/// `x1` and `x2` must share their first `k` (pivot) modes; the result has
/// modes `[pivot…, free₁…, free₂…]` and extents taken from the inputs.
///
/// ```
/// use m2td_stitch::{stitch, StitchKind};
/// use m2td_tensor::SparseTensor;
///
/// // Two sub-ensembles sharing a 2-value pivot mode.
/// let x1 = SparseTensor::from_entries(&[2, 2], &[(vec![0, 1], 2.0)]).unwrap();
/// let x2 = SparseTensor::from_entries(&[2, 3], &[(vec![0, 2], 4.0)]).unwrap();
/// let (j, report) = stitch(&x1, &x2, 1, StitchKind::Join).unwrap();
/// assert_eq!(j.dims(), &[2, 2, 3]);
/// assert_eq!(j.get(&[0, 1, 2]), Some(3.0)); // (2 + 4) / 2
/// assert_eq!(report.shared_pivot_configs, 1);
/// ```
///
/// # Errors
///
/// * [`StitchError::InvalidPivotCount`] if `k` is 0 or not smaller than
///   both orders.
/// * [`StitchError::PivotDimMismatch`] if the pivot extents disagree.
pub fn stitch(
    x1: &SparseTensor,
    x2: &SparseTensor,
    k: usize,
    kind: StitchKind,
) -> Result<(SparseTensor, StitchReport)> {
    if k == 0 || k >= x1.order() || k >= x2.order() {
        return Err(StitchError::InvalidPivotCount {
            k,
            orders: (x1.order(), x2.order()),
        });
    }
    for m in 0..k {
        if x1.dims()[m] != x2.dims()[m] {
            return Err(StitchError::PivotDimMismatch {
                mode: m,
                dims: (x1.dims()[m], x2.dims()[m]),
            });
        }
    }

    let g1 = group(x1, k);
    let g2 = group(x2, k);

    // Join tensor shape: pivot dims + free1 dims + free2 dims.
    let mut join_dims: Vec<usize> = x1.dims()[..k].to_vec();
    join_dims.extend_from_slice(&x1.dims()[k..]);
    join_dims.extend_from_slice(&x2.dims()[k..]);
    let join_shape = Shape::new(&join_dims);
    let pivot_shape = Shape::new(&x1.dims()[..k]);

    let mut entries: Vec<(u64, f64)> = Vec::new();
    let mut shared_pivots = 0usize;
    let n_total = join_dims.len();
    let mut idx = vec![0usize; n_total];

    let emit = |idx: &mut Vec<usize>,
                entries: &mut Vec<(u64, f64)>,
                pivot_lin: u64,
                f1: u64,
                f2: u64,
                value: f64| {
        pivot_shape.multi_index_into(pivot_lin as usize, &mut idx[..k]);
        let f1_len = g1.free_shape.order();
        g1.free_shape
            .multi_index_into(f1 as usize, &mut idx[k..k + f1_len]);
        g2.free_shape
            .multi_index_into(f2 as usize, &mut idx[k + f1_len..]);
        entries.push((join_shape.linear_index(idx) as u64, value));
    };

    // All pivot configurations appearing in either sub-ensemble.
    let mut pivots: BTreeSet<u64> = g1.by_pivot.keys().copied().collect();
    pivots.extend(g2.by_pivot.keys().copied());

    for &p in &pivots {
        let e1 = g1.by_pivot.get(&p);
        let e2 = g2.by_pivot.get(&p);
        if e1.is_some() && e2.is_some() {
            shared_pivots += 1;
        }
        match kind {
            StitchKind::Join => {
                if let (Some(m1), Some(m2)) = (e1, e2) {
                    for (&f1, &v1) in m1 {
                        for (&f2, &v2) in m2 {
                            emit(&mut idx, &mut entries, p, f1, f2, 0.5 * (v1 + v2));
                        }
                    }
                }
            }
            StitchKind::ZeroJoin => {
                // Pair every present x1 entry with every free2 config ever
                // selected; missing partners count as 0. Then cover the
                // (missing, present) pairs from the x2 side.
                if let Some(m1) = e1 {
                    for (&f1, &v1) in m1 {
                        for &f2 in &g2.free_set {
                            let v2 = e2.and_then(|m| m.get(&f2)).copied().unwrap_or(0.0);
                            emit(&mut idx, &mut entries, p, f1, f2, 0.5 * (v1 + v2));
                        }
                    }
                }
                if let Some(m2) = e2 {
                    for (&f2, &v2) in m2 {
                        for &f1 in &g1.free_set {
                            let x1_present = e1.map(|m| m.contains_key(&f1)).unwrap_or(false);
                            if x1_present {
                                continue; // already emitted above
                            }
                            emit(&mut idx, &mut entries, p, f1, f2, 0.5 * v2);
                        }
                    }
                }
            }
        }
    }

    entries.sort_unstable_by_key(|&(l, _)| l);
    let (indices, values): (Vec<u64>, Vec<f64>) = entries.into_iter().unzip();
    let join = SparseTensor::from_sorted_linear(&join_dims, indices, values)?;
    let report = StitchReport {
        join_nnz: join.nnz(),
        join_density: join.density(),
        shared_pivot_configs: shared_pivots,
        input_nnz: (x1.nnz(), x2.nnz()),
    };
    Ok((join, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// X1: modes [pivot(2), a(2)]; X2: modes [pivot(2), b(3)].
    fn small_inputs() -> (SparseTensor, SparseTensor) {
        let x1 = SparseTensor::from_entries(
            &[2, 2],
            &[(vec![0, 0], 1.0), (vec![0, 1], 2.0), (vec![1, 0], 3.0)],
        )
        .unwrap();
        let x2 = SparseTensor::from_entries(
            &[2, 3],
            &[(vec![0, 0], 10.0), (vec![0, 2], 20.0), (vec![1, 1], 30.0)],
        )
        .unwrap();
        (x1, x2)
    }

    #[test]
    fn join_produces_all_matching_pairs() {
        let (x1, x2) = small_inputs();
        let (j, report) = stitch(&x1, &x2, 1, StitchKind::Join).unwrap();
        assert_eq!(j.dims(), &[2, 2, 3]);
        // Pivot 0: X1 has {a=0: 1, a=1: 2}, X2 has {b=0: 10, b=2: 20} => 4 pairs.
        // Pivot 1: X1 has {a=0: 3}, X2 has {b=1: 30} => 1 pair.
        assert_eq!(j.nnz(), 5);
        assert_eq!(report.join_nnz, 5);
        assert_eq!(report.shared_pivot_configs, 2);
        assert_eq!(j.get(&[0, 0, 0]), Some(5.5)); // (1+10)/2
        assert_eq!(j.get(&[0, 1, 2]), Some(11.0)); // (2+20)/2
        assert_eq!(j.get(&[1, 0, 1]), Some(16.5)); // (3+30)/2
        assert_eq!(j.get(&[0, 0, 1]), None); // b=1 missing at pivot 0
    }

    #[test]
    fn zero_join_adds_half_entries() {
        let (x1, x2) = small_inputs();
        let (j, _) = stitch(&x1, &x2, 1, StitchKind::ZeroJoin).unwrap();
        // Pivot 0: x1 entries (2) x F2 {0,1,2} = 6; x2-only pairs: b=... f1 set {0,1}
        //   x2 entries at pivot 0 with f1 not in x1[0]: none missing (both f1 present).
        // Pivot 1: x1 entry (a=0) x F2 (3) = 3; x2 entry (b=1) x F1 {0,1}: f1=1 missing => 1.
        assert_eq!(j.nnz(), 10);
        // Missing partner at pivot 0, b=1: value 2/2 = 1 for (a=1).
        assert_eq!(j.get(&[0, 1, 1]), Some(1.0));
        // x2-side zero-join at pivot 1: (a=1, b=1) = 30/2.
        assert_eq!(j.get(&[1, 1, 1]), Some(15.0));
        // Matching pairs still averaged.
        assert_eq!(j.get(&[0, 0, 0]), Some(5.5));
    }

    #[test]
    fn zero_join_is_superset_of_join() {
        let (x1, x2) = small_inputs();
        let (j, _) = stitch(&x1, &x2, 1, StitchKind::Join).unwrap();
        let (zj, _) = stitch(&x1, &x2, 1, StitchKind::ZeroJoin).unwrap();
        assert!(zj.nnz() >= j.nnz());
        for (idx, v) in j.iter() {
            assert_eq!(
                zj.get(&idx),
                Some(v),
                "join entry {idx:?} lost in zero-join"
            );
        }
    }

    #[test]
    fn full_density_join_equals_zero_join() {
        // When every (pivot, free) pair exists, zero-join degenerates to join.
        let full = |dims: &[usize], offset: f64| {
            let shape = Shape::new(dims);
            let entries: Vec<(Vec<usize>, f64)> = (0..shape.num_elements())
                .map(|l| (shape.multi_index(l), l as f64 + offset))
                .collect();
            SparseTensor::from_entries(dims, &entries).unwrap()
        };
        let x1 = full(&[3, 2], 1.0);
        let x2 = full(&[3, 2], 100.0);
        let (j, _) = stitch(&x1, &x2, 1, StitchKind::Join).unwrap();
        let (zj, _) = stitch(&x1, &x2, 1, StitchKind::ZeroJoin).unwrap();
        assert_eq!(j, zj);
        assert_eq!(j.nnz(), 3 * 2 * 2);
        assert!((j.density() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn effective_density_squares() {
        // P pivots, E free configs each, fully crossed: join nnz = P * E^2
        // from 2 * P * E input cells (Figure 6 of the paper).
        let p = 4;
        let e = 5;
        let mk = |seed: f64| {
            let entries: Vec<(Vec<usize>, f64)> = (0..p)
                .flat_map(|pi| (0..e).map(move |fi| (vec![pi, fi], seed + (pi * e + fi) as f64)))
                .collect();
            SparseTensor::from_entries(&[p, e], &entries).unwrap()
        };
        let x1 = mk(0.0);
        let x2 = mk(50.0);
        let (j, report) = stitch(&x1, &x2, 1, StitchKind::Join).unwrap();
        assert_eq!(report.input_nnz, (p * e, p * e));
        assert_eq!(j.nnz(), p * e * e);
    }

    #[test]
    fn multi_pivot_stitch() {
        // k = 2 pivot modes.
        let x1 = SparseTensor::from_entries(&[2, 2, 2], &[(vec![0, 1, 0], 2.0)]).unwrap();
        let x2 = SparseTensor::from_entries(&[2, 2, 3], &[(vec![0, 1, 2], 4.0)]).unwrap();
        let (j, r) = stitch(&x1, &x2, 2, StitchKind::Join).unwrap();
        assert_eq!(j.dims(), &[2, 2, 2, 3]);
        assert_eq!(j.get(&[0, 1, 0, 2]), Some(3.0));
        assert_eq!(r.shared_pivot_configs, 1);
    }

    #[test]
    fn disjoint_pivots_produce_empty_join() {
        let x1 = SparseTensor::from_entries(&[2, 2], &[(vec![0, 0], 1.0)]).unwrap();
        let x2 = SparseTensor::from_entries(&[2, 2], &[(vec![1, 0], 1.0)]).unwrap();
        let (j, r) = stitch(&x1, &x2, 1, StitchKind::Join).unwrap();
        assert_eq!(j.nnz(), 0);
        assert_eq!(r.shared_pivot_configs, 0);
        // Zero-join still produces the half entries.
        let (zj, _) = stitch(&x1, &x2, 1, StitchKind::ZeroJoin).unwrap();
        assert_eq!(zj.nnz(), 2);
        assert_eq!(zj.get(&[0, 0, 0]), Some(0.5));
        assert_eq!(zj.get(&[1, 0, 0]), Some(0.5));
    }

    #[test]
    fn validation_errors() {
        let (x1, x2) = small_inputs();
        assert!(matches!(
            stitch(&x1, &x2, 0, StitchKind::Join),
            Err(StitchError::InvalidPivotCount { .. })
        ));
        assert!(matches!(
            stitch(&x1, &x2, 2, StitchKind::Join),
            Err(StitchError::InvalidPivotCount { .. })
        ));
        let bad = SparseTensor::from_entries(&[3, 2], &[(vec![0, 0], 1.0)]).unwrap();
        assert!(matches!(
            stitch(&x1, &bad, 1, StitchKind::Join),
            Err(StitchError::PivotDimMismatch { .. })
        ));
    }

    #[test]
    fn join_values_are_symmetric_in_inputs() {
        // stitch(x1, x2) and stitch(x2, x1) hold the same values with
        // free-mode blocks swapped.
        let (x1, x2) = small_inputs();
        let (j12, _) = stitch(&x1, &x2, 1, StitchKind::Join).unwrap();
        let (j21, _) = stitch(&x2, &x1, 1, StitchKind::Join).unwrap();
        assert_eq!(j12.nnz(), j21.nnz());
        for (idx, v) in j12.iter() {
            let swapped = vec![idx[0], idx[2], idx[1]];
            assert_eq!(j21.get(&swapped), Some(v));
        }
    }
}
