//! JE-stitching (Section V-C of the paper): combining the two
//! PF-partitioned sub-ensembles along their shared pivot modes into a
//! high-order *join tensor* with boosted effective density.
//!
//! Both sub-tensors must use the sub-tensor mode convention of
//! `m2td_sampling::PfPartition`: the first `k` modes are the shared pivot
//! modes, the remaining modes are the sub-system's free modes. The join
//! tensor's modes are `[pivot…, free₁…, free₂…]`.
//!
//! * **Join** ([`StitchKind::Join`]): for every pair of simulations that
//!   agree on the pivot values, store the average `(x₁ + x₂)/2`. With `P`
//!   pivot configurations and `E` free configurations per sub-system this
//!   yields up to `P·E²` join entries from `2·P·E` simulations —
//!   effectively squaring the ensemble density (Figure 6 of the paper).
//! * **Zero-join** ([`StitchKind::ZeroJoin`]): additionally, when one side
//!   of a pair is missing, it is treated as an existing simulation with
//!   value 0 and the entry `x/2` is still produced — boosting density
//!   further when sub-ensemble densities are too low for plain join
//!   stitching to be effective (evaluated in Table V).

mod error;
mod join;
mod multiway;

pub use error::StitchError;
pub use join::{stitch, StitchKind, StitchReport};
pub use multiway::stitch_multi;

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, StitchError>;
