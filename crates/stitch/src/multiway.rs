//! Multi-way JE-stitching — an extension beyond the paper.
//!
//! The paper partitions a system into exactly **two** sub-systems. Nothing
//! in the join construction requires that: `S` sub-ensembles sharing the
//! same `k` pivot modes can be stitched into a join tensor with modes
//! `[pivot…, free₁…, …, free_S…]`, each cell averaging the `S` source
//! simulations. Finer partitions buy exponentially more effective density
//! per simulation (each sub-space is smaller), at the cost of fixing more
//! parameters per sub-system — the `ablation_partitions` bench quantifies
//! the trade-off.
//!
//! For `S = 2` this reduces exactly to [`crate::stitch`] (tested).

use crate::error::StitchError;
use crate::join::{StitchKind, StitchReport};
use crate::Result;
use m2td_tensor::{Shape, SparseTensor};
use std::collections::{BTreeMap, BTreeSet};

/// Per-sub-tensor grouping by pivot configuration.
struct Grouped {
    by_pivot: BTreeMap<u64, BTreeMap<u64, f64>>,
    free_set: Vec<u64>,
    free_shape: Shape,
}

fn group(x: &SparseTensor, k: usize) -> Grouped {
    let pivot_shape = Shape::new(&x.dims()[..k]);
    let free_shape = Shape::new(&x.dims()[k..]);
    let mut by_pivot: BTreeMap<u64, BTreeMap<u64, f64>> = BTreeMap::new();
    let mut free_set = BTreeSet::new();
    for (idx, v) in x.iter() {
        let p = pivot_shape.linear_index(&idx[..k]) as u64;
        let f = free_shape.linear_index(&idx[k..]) as u64;
        by_pivot.entry(p).or_default().insert(f, v);
        free_set.insert(f);
    }
    Grouped {
        by_pivot,
        free_set: free_set.into_iter().collect(),
        free_shape,
    }
}

/// Stitches `S ≥ 2` sub-ensemble tensors sharing their first `k` (pivot)
/// modes into one join tensor.
///
/// * [`StitchKind::Join`]: a join cell exists when **every** sub-system
///   has a simulation at that (pivot, free) combination; its value is the
///   mean of the `S` sources.
/// * [`StitchKind::ZeroJoin`]: a join cell exists when **any** sub-system
///   has a simulation there (free coordinates restricted to each
///   sub-system's globally selected free set); missing sources count as 0.
///
/// # Errors
///
/// * [`StitchError::InvalidPivotCount`] if fewer than two sub-tensors are
///   supplied or `k` is not smaller than every order.
/// * [`StitchError::PivotDimMismatch`] if pivot extents disagree.
pub fn stitch_multi(
    subs: &[&SparseTensor],
    k: usize,
    kind: StitchKind,
) -> Result<(SparseTensor, StitchReport)> {
    if subs.len() < 2 {
        return Err(StitchError::InvalidPivotCount {
            k,
            orders: (subs.len(), 0),
        });
    }
    for x in subs {
        if k == 0 || k >= x.order() {
            return Err(StitchError::InvalidPivotCount {
                k,
                orders: (subs[0].order(), x.order()),
            });
        }
    }
    for m in 0..k {
        for x in &subs[1..] {
            if x.dims()[m] != subs[0].dims()[m] {
                return Err(StitchError::PivotDimMismatch {
                    mode: m,
                    dims: (subs[0].dims()[m], x.dims()[m]),
                });
            }
        }
    }

    let groups: Vec<Grouped> = subs.iter().map(|x| group(x, k)).collect();
    let s_count = subs.len() as f64;

    // Join shape: pivot dims + concatenated free dims.
    let mut join_dims: Vec<usize> = subs[0].dims()[..k].to_vec();
    for x in subs {
        join_dims.extend_from_slice(&x.dims()[k..]);
    }
    let join_shape = Shape::new(&join_dims);
    let pivot_shape = Shape::new(&subs[0].dims()[..k]);

    // Pivot configurations: intersection for join, union for zero-join.
    let pivots: Vec<u64> = match kind {
        StitchKind::Join => {
            let mut it = groups.iter();
            let first: BTreeSet<u64> = it.next().unwrap().by_pivot.keys().copied().collect();
            groups[1..]
                .iter()
                .fold(first, |acc, g| {
                    acc.intersection(&g.by_pivot.keys().copied().collect())
                        .copied()
                        .collect()
                })
                .into_iter()
                .collect()
        }
        StitchKind::ZeroJoin => {
            let mut all = BTreeSet::new();
            for g in &groups {
                all.extend(g.by_pivot.keys().copied());
            }
            all.into_iter().collect()
        }
    };
    let shared_pivots = {
        let mut it = groups.iter();
        let first: BTreeSet<u64> = it.next().unwrap().by_pivot.keys().copied().collect();
        groups[1..]
            .iter()
            .fold(first, |acc, g| {
                acc.intersection(&g.by_pivot.keys().copied().collect())
                    .copied()
                    .collect()
            })
            .len()
    };

    let mut entries: Vec<(u64, f64)> = Vec::new();
    let mut idx = vec![0usize; join_dims.len()];
    // Recursive cartesian enumeration over per-sub free choices.
    let mut choice = vec![0u64; groups.len()];
    for &p in &pivots {
        enumerate(
            &groups,
            kind,
            p,
            0,
            &mut choice,
            &mut |choice: &[u64], sum: f64, present: usize| {
                if present == 0 {
                    return;
                }
                if kind == StitchKind::Join && present != groups.len() {
                    return;
                }
                pivot_shape.multi_index_into(p as usize, &mut idx[..k]);
                let mut offset = k;
                for (g, &f) in groups.iter().zip(choice.iter()) {
                    let len = g.free_shape.order();
                    g.free_shape
                        .multi_index_into(f as usize, &mut idx[offset..offset + len]);
                    offset += len;
                }
                entries.push((join_shape.linear_index(&idx) as u64, sum / s_count));
            },
        );
    }

    entries.sort_unstable_by_key(|&(l, _)| l);
    entries.dedup_by_key(|&mut (l, _)| l);
    let (indices, values): (Vec<u64>, Vec<f64>) = entries.into_iter().unzip();
    let join = SparseTensor::from_sorted_linear(&join_dims, indices, values)?;
    let report = StitchReport {
        join_nnz: join.nnz(),
        join_density: join.density(),
        shared_pivot_configs: shared_pivots,
        input_nnz: (subs[0].nnz(), subs.last().unwrap().nnz()),
    };
    Ok((join, report))
}

/// Enumerates free-coordinate combinations for pivot `p`. For `Join`,
/// iterates each sub-system's *present* entries; for `ZeroJoin`, each
/// sub-system's global free set (missing values contribute 0).
fn enumerate(
    groups: &[Grouped],
    kind: StitchKind,
    p: u64,
    depth: usize,
    choice: &mut Vec<u64>,
    emit: &mut impl FnMut(&[u64], f64, usize),
) {
    // Accumulate (sum, present) incrementally via recursion results: we
    // recompute per leaf for clarity; group maps are BTreeMaps so lookups
    // are cheap at the scales involved.
    if depth == groups.len() {
        let mut sum = 0.0;
        let mut present = 0;
        for (g, &f) in groups.iter().zip(choice.iter()) {
            if let Some(v) = g.by_pivot.get(&p).and_then(|m| m.get(&f)) {
                sum += v;
                present += 1;
            }
        }
        emit(choice, sum, present);
        return;
    }
    let g = &groups[depth];
    match kind {
        StitchKind::Join => {
            if let Some(m) = g.by_pivot.get(&p) {
                for &f in m.keys() {
                    choice[depth] = f;
                    enumerate(groups, kind, p, depth + 1, choice, emit);
                }
            }
        }
        StitchKind::ZeroJoin => {
            for &f in &g.free_set {
                choice[depth] = f;
                enumerate(groups, kind, p, depth + 1, choice, emit);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::stitch;

    fn full(dims: &[usize], offset: f64) -> SparseTensor {
        let shape = Shape::new(dims);
        let entries: Vec<(Vec<usize>, f64)> = (0..shape.num_elements())
            .map(|l| (shape.multi_index(l), offset + l as f64))
            .collect();
        SparseTensor::from_entries(dims, &entries).unwrap()
    }

    #[test]
    fn two_way_multi_matches_pairwise_stitch() {
        let x1 = full(&[3, 2], 1.0);
        let x2 = full(&[3, 4], 100.0);
        for kind in [StitchKind::Join, StitchKind::ZeroJoin] {
            let (pair, pr) = stitch(&x1, &x2, 1, kind).unwrap();
            let (multi, mr) = stitch_multi(&[&x1, &x2], 1, kind).unwrap();
            assert_eq!(pair, multi, "{kind:?} disagrees with pairwise stitch");
            assert_eq!(pr.join_nnz, mr.join_nnz);
            assert_eq!(pr.shared_pivot_configs, mr.shared_pivot_configs);
        }
    }

    #[test]
    fn two_way_multi_matches_pairwise_on_thin_inputs() {
        let thin = |x: &SparseTensor, m: usize| {
            let entries: Vec<(Vec<usize>, f64)> = x
                .iter()
                .enumerate()
                .filter(|(i, _)| i % m != 0)
                .map(|(_, e)| e)
                .collect();
            SparseTensor::from_entries(x.dims(), &entries).unwrap()
        };
        let x1 = thin(&full(&[4, 3], 1.0), 3);
        let x2 = thin(&full(&[4, 5], 50.0), 4);
        for kind in [StitchKind::Join, StitchKind::ZeroJoin] {
            let (pair, _) = stitch(&x1, &x2, 1, kind).unwrap();
            let (multi, _) = stitch_multi(&[&x1, &x2], 1, kind).unwrap();
            assert_eq!(pair, multi, "{kind:?} disagrees on thin inputs");
        }
    }

    #[test]
    fn three_way_join_counts_and_values() {
        let x1 = full(&[2, 2], 0.0);
        let x2 = full(&[2, 3], 10.0);
        let x3 = full(&[2, 2], 100.0);
        let (j, report) = stitch_multi(&[&x1, &x2, &x3], 1, StitchKind::Join).unwrap();
        assert_eq!(j.dims(), &[2, 2, 3, 2]);
        assert_eq!(j.nnz(), 2 * 2 * 3 * 2);
        assert_eq!(report.shared_pivot_configs, 2);
        // Spot-check a value: mean of the three sources.
        let v = j.get(&[1, 0, 2, 1]).unwrap();
        let expected =
            (x1.get(&[1, 0]).unwrap() + x2.get(&[1, 2]).unwrap() + x3.get(&[1, 1]).unwrap()) / 3.0;
        assert!((v - expected).abs() < 1e-12);
    }

    #[test]
    fn three_way_zero_join_fills_missing_with_zero() {
        let x1 = SparseTensor::from_entries(&[2, 2], &[(vec![0, 0], 3.0)]).unwrap();
        let x2 = SparseTensor::from_entries(&[2, 2], &[(vec![0, 1], 6.0)]).unwrap();
        let x3 = SparseTensor::from_entries(&[2, 2], &[(vec![1, 0], 9.0)]).unwrap();
        let (j, _) = stitch_multi(&[&x1, &x2, &x3], 1, StitchKind::ZeroJoin).unwrap();
        // Pivot 0: x1 and x2 present, x3 absent -> (3 + 6 + 0)/3 at their
        // free choices.
        assert_eq!(j.get(&[0, 0, 1, 0]), Some(3.0));
        // Pivot 1: only x3 -> 9/3.
        assert_eq!(j.get(&[1, 0, 1, 0]), Some(3.0));
        // Plain join is empty (no pivot has all three).
        let (pj, _) = stitch_multi(&[&x1, &x2, &x3], 1, StitchKind::Join).unwrap();
        assert_eq!(pj.nnz(), 0);
    }

    #[test]
    fn validation_errors() {
        let x = full(&[2, 2], 0.0);
        assert!(stitch_multi(&[&x], 1, StitchKind::Join).is_err());
        assert!(stitch_multi(&[&x, &x], 0, StitchKind::Join).is_err());
        assert!(stitch_multi(&[&x, &x], 2, StitchKind::Join).is_err());
        let bad = full(&[3, 2], 0.0);
        assert!(stitch_multi(&[&x, &bad], 1, StitchKind::Join).is_err());
    }

    #[test]
    fn four_way_effective_density() {
        // 4 sub-systems, each P x E complete: join has P * E^4 cells from
        // 4 * P * E inputs.
        let p = 3;
        let e = 2;
        let subs: Vec<SparseTensor> = (0..4).map(|s| full(&[p, e], s as f64 * 10.0)).collect();
        let refs: Vec<&SparseTensor> = subs.iter().collect();
        let (j, _) = stitch_multi(&refs, 1, StitchKind::Join).unwrap();
        assert_eq!(j.nnz(), p * e.pow(4));
    }
}
