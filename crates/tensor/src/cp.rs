//! CP (CANDECOMP/PARAFAC) decomposition via alternating least squares.
//!
//! The paper cites CP [11] as the other classic tensor decomposition; we
//! provide it as an extension and as an additional baseline in ablation
//! benches. The implementation is the standard ALS: each factor is refit
//! against the Khatri–Rao product of the others through the normal
//! equations (MTTKRP + Hadamard-of-Grams solve).

use crate::dense::DenseTensor;
use crate::error::TensorError;
use crate::Result;
use m2td_linalg::{solve_spd, Matrix};

/// Options controlling CP-ALS.
#[derive(Debug, Clone, Copy)]
pub struct CpOptions {
    /// Maximum ALS sweeps.
    pub max_sweeps: usize,
    /// Convergence threshold on the relative fit change between sweeps.
    pub tolerance: f64,
    /// Ridge added to the normal equations for numerical robustness.
    pub ridge: f64,
}

impl Default for CpOptions {
    fn default() -> Self {
        Self {
            max_sweeps: 50,
            tolerance: 1e-8,
            ridge: 1e-10,
        }
    }
}

/// A rank-`R` CP decomposition: `X ≈ Σ_r λ_r a⁽¹⁾_r ∘ ⋯ ∘ a⁽ᴺ⁾_r`.
#[derive(Debug, Clone)]
pub struct CpDecomp {
    /// Component weights `λ_r`, decreasing.
    pub weights: Vec<f64>,
    /// Per-mode factor matrices (`I_n × R`), columns normalized.
    pub factors: Vec<Matrix>,
    /// Number of ALS sweeps performed.
    pub sweeps: usize,
}

impl CpDecomp {
    /// The decomposition rank `R`.
    pub fn rank(&self) -> usize {
        self.weights.len()
    }

    /// Recomposes the dense tensor.
    pub fn reconstruct(&self) -> Result<DenseTensor> {
        let dims: Vec<usize> = self.factors.iter().map(|f| f.rows()).collect();
        let r = self.rank();
        let out = DenseTensor::from_fn(&dims, |idx| {
            let mut acc = 0.0;
            for c in 0..r {
                let mut term = self.weights[c];
                for (n, &i) in idx.iter().enumerate() {
                    term *= self.factors[n].get(i, c);
                }
                acc += term;
            }
            acc
        });
        Ok(out)
    }

    /// Relative Frobenius error against a reference tensor.
    pub fn relative_error(&self, reference: &DenseTensor) -> Result<f64> {
        let recon = self.reconstruct()?;
        let diff = recon.sub(reference)?;
        let denom = reference.frobenius_norm();
        if denom == 0.0 {
            return Ok(if diff.frobenius_norm() == 0.0 {
                0.0
            } else {
                f64::INFINITY
            });
        }
        Ok(diff.frobenius_norm() / denom)
    }
}

/// Matricized-tensor-times-Khatri–Rao-product for mode `n`:
/// `M[i_n, r] = Σ_idx X[idx] Π_{m≠n} A⁽ᵐ⁾[i_m, r]`.
fn mttkrp(x: &DenseTensor, factors: &[Matrix], mode: usize, rank: usize) -> Matrix {
    let mut out = Matrix::zeros(x.dims()[mode], rank);
    let shape = x.shape().clone();
    let mut idx = vec![0usize; x.order()];
    for (lin, &v) in x.as_slice().iter().enumerate() {
        if v == 0.0 {
            continue;
        }
        shape.multi_index_into(lin, &mut idx);
        for r in 0..rank {
            let mut coef = v;
            for (m, &i) in idx.iter().enumerate() {
                if m != mode {
                    coef *= factors[m].get(i, r);
                }
            }
            let cur = out.get(idx[mode], r);
            out.set(idx[mode], r, cur + coef);
        }
    }
    out
}

/// CP-ALS on a dense tensor.
///
/// Factors are initialized deterministically from unit-normed sinusoids so
/// runs are reproducible without a seed parameter; callers wanting random
/// restarts can perturb the input.
///
/// # Errors
///
/// * [`TensorError::RankTooLarge`] when `rank` is zero.
/// * [`TensorError::EmptyTensor`] for empty inputs.
pub fn cp_als(x: &DenseTensor, rank: usize, opts: CpOptions) -> Result<CpDecomp> {
    if rank == 0 {
        return Err(TensorError::RankTooLarge {
            mode: 0,
            requested: 0,
            available: 1,
        });
    }
    if x.num_elements() == 0 {
        return Err(TensorError::EmptyTensor);
    }
    let order = x.order();
    let norm_x = x.frobenius_norm();

    // Deterministic quasi-random initialization.
    let mut factors: Vec<Matrix> = (0..order)
        .map(|n| {
            Matrix::from_fn(x.dims()[n], rank, |i, r| {
                (((n + 1) * (i + 1) * (r + 2)) as f64).sin() + 1.5
            })
        })
        .collect();

    let mut prev_fit = f64::NEG_INFINITY;
    let mut sweeps = 0;
    for sweep in 1..=opts.max_sweeps {
        sweeps = sweep;
        for mode in 0..order {
            // Hadamard product of Grams of all other factors.
            let mut v = Matrix::from_fn(rank, rank, |_, _| 1.0);
            for (m, f) in factors.iter().enumerate() {
                if m == mode {
                    continue;
                }
                let g = f.transpose_matmul(f)?;
                for i in 0..rank {
                    for j in 0..rank {
                        v.set(i, j, v.get(i, j) * g.get(i, j));
                    }
                }
            }
            for i in 0..rank {
                v.set(i, i, v.get(i, i) + opts.ridge);
            }
            let m = mttkrp(x, &factors, mode, rank);
            // Solve V Aᵀ = Mᵀ row-by-row of M (each row of A solves V a = m).
            let mut new_factor = Matrix::zeros(x.dims()[mode], rank);
            for i in 0..x.dims()[mode] {
                let rhs = m.row(i);
                let sol = solve_spd(&v, rhs)?;
                new_factor.row_mut(i).copy_from_slice(&sol);
            }
            factors[mode] = new_factor;
        }

        // Fit check.
        let decomp = normalize_into_decomp(&factors, sweeps);
        let err = decomp.relative_error(x)?;
        let fit = 1.0 - err;
        if norm_x == 0.0 || (fit - prev_fit).abs() < opts.tolerance {
            return Ok(decomp);
        }
        prev_fit = fit;
    }
    Ok(normalize_into_decomp(&factors, sweeps))
}

/// Normalizes factor columns to unit norm, folding the norms into weights.
fn normalize_into_decomp(factors: &[Matrix], sweeps: usize) -> CpDecomp {
    let rank = factors[0].cols();
    let mut weights = vec![1.0; rank];
    let mut out_factors: Vec<Matrix> = factors.to_vec();
    // One column buffer serves every factor sweep below.
    let mut col = Vec::new();
    for f in &mut out_factors {
        for (r, w) in weights.iter_mut().enumerate() {
            f.col_into(r, &mut col);
            let n = m2td_linalg::norm2(&col);
            if n > 0.0 {
                *w *= n;
                for x in col.iter_mut() {
                    *x /= n;
                }
                f.set_col(r, &col);
            }
        }
    }
    // Sort components by decreasing weight.
    let mut order: Vec<usize> = (0..rank).collect();
    order.sort_by(|&a, &b| {
        weights[b]
            .partial_cmp(&weights[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let sorted_weights: Vec<f64> = order.iter().map(|&i| weights[i]).collect();
    let mut sorted_factors: Vec<Matrix> = Vec::with_capacity(out_factors.len());
    for f in &out_factors {
        let mut nf = Matrix::zeros(f.rows(), rank);
        for (new_c, &old_c) in order.iter().enumerate() {
            f.col_into(old_c, &mut col);
            nf.set_col(new_c, &col);
        }
        sorted_factors.push(nf);
    }
    CpDecomp {
        weights: sorted_weights,
        factors: sorted_factors,
        sweeps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_one_tensor_recovered_exactly() {
        let x = DenseTensor::from_fn(&[4, 3, 5], |i| {
            (i[0] + 1) as f64 * (2 * i[1] + 1) as f64 * (i[2] + 3) as f64
        });
        let d = cp_als(&x, 1, CpOptions::default()).unwrap();
        assert!(d.relative_error(&x).unwrap() < 1e-8);
        assert_eq!(d.rank(), 1);
    }

    #[test]
    fn rank_two_tensor_recovered() {
        // Sum of two separable components.
        let x = DenseTensor::from_fn(&[4, 4, 4], |i| {
            let a = (i[0] + 1) as f64 * (i[1] + 1) as f64 * (i[2] + 1) as f64;
            let b = ((i[0] as f64).sin() + 2.0)
                * ((i[1] as f64).cos() + 2.0)
                * ((i[2] as f64 * 0.5).sin() + 2.0);
            a + 10.0 * b
        });
        let opts = CpOptions {
            max_sweeps: 300,
            tolerance: 1e-12,
            ..CpOptions::default()
        };
        let d = cp_als(&x, 2, opts).unwrap();
        // ALS converges slowly near degenerate components; 2% relative
        // error comfortably distinguishes recovery from failure here.
        assert!(
            d.relative_error(&x).unwrap() < 0.02,
            "err {}",
            d.relative_error(&x).unwrap()
        );
    }

    #[test]
    fn error_decreases_with_rank() {
        let x = DenseTensor::from_fn(&[5, 5, 5], |i| {
            ((i[0] * i[1]) as f64 + (i[2] as f64).sin() * 4.0 + (i[0] + i[2]) as f64).cos()
        });
        let e1 = cp_als(&x, 1, CpOptions::default())
            .unwrap()
            .relative_error(&x)
            .unwrap();
        let e3 = cp_als(&x, 3, CpOptions::default())
            .unwrap()
            .relative_error(&x)
            .unwrap();
        assert!(e3 <= e1 + 1e-9, "e1={e1}, e3={e3}");
    }

    #[test]
    fn weights_sorted_descending() {
        let x = DenseTensor::from_fn(&[4, 4, 4], |i| ((i[0] + i[1] * i[2]) as f64).sin() + 1.0);
        let d = cp_als(&x, 3, CpOptions::default()).unwrap();
        for w in d.weights.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn factors_have_unit_columns() {
        let x = DenseTensor::from_fn(&[4, 3, 4], |i| (i[0] + 2 * i[1] + 3 * i[2]) as f64 + 1.0);
        let d = cp_als(&x, 2, CpOptions::default()).unwrap();
        for f in &d.factors {
            for r in 0..d.rank() {
                let n = m2td_linalg::norm2(&f.col(r));
                assert!((n - 1.0).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn mttkrp_matches_explicit_khatri_rao() {
        // M = X_(n) * (A^(N) ⊙ … ⊙ A^(1), skipping n) — verify the fused
        // kernel against the explicit product from m2td-linalg.
        use m2td_linalg::khatri_rao;
        let x = DenseTensor::from_fn(&[3, 4, 2], |i| (i[0] * 8 + i[1] * 2 + i[2]) as f64 + 0.5);
        let rank = 2;
        let factors: Vec<Matrix> = x
            .dims()
            .iter()
            .enumerate()
            .map(|(n, &d)| Matrix::from_fn(d, rank, |i, r| ((n + i * 2 + r) as f64 * 0.31).sin()))
            .collect();
        for mode in 0..3 {
            let fused = mttkrp(&x, &factors, mode, rank);
            // Khatri–Rao of the other factors in reverse mode order
            // (Kolda & Bader convention matching our unfolding).
            let others: Vec<&Matrix> = (0..3)
                .rev()
                .filter(|&m| m != mode)
                .map(|m| &factors[m])
                .collect();
            let kr = khatri_rao(others[0], others[1]).unwrap();
            let explicit = x.unfold(mode).unwrap().matmul(&kr).unwrap();
            let diff = fused.sub(&explicit).unwrap().frobenius_norm();
            assert!(diff < 1e-10, "mode {mode} MTTKRP mismatch: {diff}");
        }
    }

    #[test]
    fn invalid_inputs_rejected() {
        let x = DenseTensor::from_fn(&[2, 2], |i| (i[0] + i[1]) as f64);
        assert!(cp_als(&x, 0, CpOptions::default()).is_err());
        let empty = DenseTensor::zeros(&[0, 2]);
        assert!(cp_als(&empty, 1, CpOptions::default()).is_err());
    }
}
