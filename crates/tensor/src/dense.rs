//! Dense row-major tensor.

use crate::error::TensorError;
use crate::shape::Shape;
use crate::Result;
use m2td_linalg::Matrix;

/// A dense `N`-mode tensor stored as a row-major `Vec<f64>`.
///
/// Dense tensors appear at three places in the M2TD pipeline: ground-truth
/// tensors `Y` for accuracy evaluation, Tucker cores, and intermediate
/// results of TTM chains. Sampled ensembles are [`crate::SparseTensor`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseTensor {
    shape: Shape,
    data: Vec<f64>,
}

impl DenseTensor {
    /// Creates an all-zero tensor of the given shape.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let n = shape.num_elements();
        Self {
            shape,
            data: vec![0.0; n],
        }
    }

    /// Creates a tensor from a row-major buffer.
    ///
    /// Returns an error if `data.len()` does not equal the shape's element
    /// count.
    pub fn from_vec(dims: &[usize], data: Vec<f64>) -> Result<Self> {
        let shape = Shape::new(dims);
        if data.len() != shape.num_elements() {
            return Err(TensorError::ShapeMismatch {
                expected: dims.to_vec(),
                actual: vec![data.len()],
                op: "from_vec",
            });
        }
        Ok(Self { shape, data })
    }

    /// Creates a tensor by evaluating `f` at every multi-index.
    pub fn from_fn(dims: &[usize], mut f: impl FnMut(&[usize]) -> f64) -> Self {
        let shape = Shape::new(dims);
        let total = shape.num_elements();
        let mut data = Vec::with_capacity(total);
        let mut idx = vec![0usize; shape.order()];
        for lin in 0..total {
            shape.multi_index_into(lin, &mut idx);
            data.push(f(&idx));
        }
        Self { shape, data }
    }

    /// The tensor shape.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Mode extents.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Tensor order (number of modes).
    #[inline]
    pub fn order(&self) -> usize {
        self.shape.order()
    }

    /// Total number of elements.
    #[inline]
    pub fn num_elements(&self) -> usize {
        self.data.len()
    }

    /// Row-major data buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable row-major data buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the tensor and returns the backing buffer, so intermediates
    /// of a TTM chain can be recycled through [`crate::Workspace`].
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Value at a multi-index (debug-asserted bounds).
    #[inline]
    pub fn get(&self, index: &[usize]) -> f64 {
        self.data[self.shape.linear_index(index)]
    }

    /// Checked value access.
    pub fn try_get(&self, index: &[usize]) -> Result<f64> {
        self.shape.check_index(index)?;
        Ok(self.data[self.shape.linear_index(index)])
    }

    /// Sets the value at a multi-index (debug-asserted bounds).
    #[inline]
    pub fn set(&mut self, index: &[usize], v: f64) {
        let lin = self.shape.linear_index(index);
        self.data[lin] = v;
    }

    /// Value at a linear (row-major) index.
    #[inline]
    pub fn get_linear(&self, lin: usize) -> f64 {
        self.data[lin]
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        m2td_linalg::norm2(&self.data)
    }

    /// Largest absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, &x| m.max(x.abs()))
    }

    /// Elementwise difference (`self - other`).
    pub fn sub(&self, other: &DenseTensor) -> Result<DenseTensor> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                expected: self.dims().to_vec(),
                actual: other.dims().to_vec(),
                op: "sub",
            });
        }
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| a - b)
            .collect();
        Ok(DenseTensor {
            shape: self.shape.clone(),
            data,
        })
    }

    /// Elementwise sum (`self + other`).
    pub fn add(&self, other: &DenseTensor) -> Result<DenseTensor> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                expected: self.dims().to_vec(),
                actual: other.dims().to_vec(),
                op: "add",
            });
        }
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| a + b)
            .collect();
        Ok(DenseTensor {
            shape: self.shape.clone(),
            data,
        })
    }

    /// Returns `alpha * self`.
    pub fn scaled(&self, alpha: f64) -> DenseTensor {
        DenseTensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| alpha * x).collect(),
        }
    }

    /// Extracts the slice with mode `mode` fixed at `index`, dropping that
    /// mode (order decreases by one). The ensemble reading: fix one
    /// parameter and look at the remaining response surface.
    pub fn slice(&self, mode: usize, index: usize) -> Result<DenseTensor> {
        self.shape.check_mode(mode)?;
        if index >= self.shape.dim(mode) {
            return Err(TensorError::IndexOutOfBounds {
                index: vec![index],
                shape: self.dims().to_vec(),
            });
        }
        let out_dims: Vec<usize> = self
            .dims()
            .iter()
            .enumerate()
            .filter(|&(m, _)| m != mode)
            .map(|(_, &d)| d)
            .collect();
        let out_shape = Shape::new(&out_dims);
        let mut out = DenseTensor::zeros(&out_dims);
        let mut idx = vec![0usize; self.order()];
        let mut out_idx = vec![0usize; out_dims.len()];
        for lin in 0..out_shape.num_elements() {
            out_shape.multi_index_into(lin, &mut out_idx);
            let mut o = 0;
            for (m, slot) in idx.iter_mut().enumerate() {
                if m == mode {
                    *slot = index;
                } else {
                    *slot = out_idx[o];
                    o += 1;
                }
            }
            out.data[lin] = self.get(&idx);
        }
        Ok(out)
    }

    /// Permutes the tensor modes: `perm[new_mode] = old_mode`. The result's
    /// mode `n` is the input's mode `perm[n]`.
    ///
    /// Used to map tensors between the *join order* (pivot modes first, as
    /// produced by JE-stitching) and the natural parameter order of the
    /// ground-truth tensor.
    pub fn permute_modes(&self, perm: &[usize]) -> Result<DenseTensor> {
        let order = self.order();
        if perm.len() != order {
            return Err(TensorError::WrongNumberOfRanks {
                supplied: perm.len(),
                order,
            });
        }
        let mut seen = vec![false; order];
        for &p in perm {
            if p >= order || seen[p] {
                return Err(TensorError::InvalidMode { mode: p, order });
            }
            seen[p] = true;
        }
        let new_dims: Vec<usize> = perm.iter().map(|&p| self.dims()[p]).collect();
        let new_shape = Shape::new(&new_dims);
        let mut out = DenseTensor::zeros(&new_dims);
        let mut old_idx = vec![0usize; order];
        let mut new_idx = vec![0usize; order];
        for (lin, &v) in self.data.iter().enumerate() {
            self.shape.multi_index_into(lin, &mut old_idx);
            for (n, &p) in perm.iter().enumerate() {
                new_idx[n] = old_idx[p];
            }
            let new_lin = new_shape.linear_index(&new_idx);
            out.data[new_lin] = v;
        }
        Ok(out)
    }

    /// Mode-`n` unfolding as a dense matrix of shape
    /// `I_n x Π_{m≠n} I_m` (Kolda & Bader convention; see crate docs).
    pub fn unfold(&self, mode: usize) -> Result<Matrix> {
        let mut out = Matrix::zeros(0, 0);
        self.unfold_into(mode, &mut out)?;
        Ok(out)
    }

    /// [`Self::unfold`] writing into a caller-supplied matrix, which is
    /// reshaped in place so its allocation is reused across the steps of a
    /// TTM chain (see [`crate::Workspace`]).
    pub fn unfold_into(&self, mode: usize, out: &mut Matrix) -> Result<()> {
        self.shape.check_mode(mode)?;
        let rows = self.shape.dim(mode);
        let cols = self.shape.unfold_cols(mode);
        out.reset(rows, cols);
        let mut idx = vec![0usize; self.order()];
        for (lin, &v) in self.data.iter().enumerate() {
            self.shape.multi_index_into(lin, &mut idx);
            let r = idx[mode];
            let c = self.shape.unfold_col_index(mode, &idx);
            out.set(r, c, v);
        }
        Ok(())
    }

    /// Inverse of [`Self::unfold`]: folds an `I_n x Π_{m≠n} I_m` matrix back
    /// into a tensor of shape `dims`.
    pub fn fold(matrix: &Matrix, mode: usize, dims: &[usize]) -> Result<DenseTensor> {
        Self::fold_into(matrix, mode, dims, Vec::new())
    }

    /// [`Self::fold`] building the tensor on top of a recycled buffer
    /// (every element is overwritten, so the buffer's prior contents are
    /// irrelevant — only its capacity is reused).
    pub fn fold_into(
        matrix: &Matrix,
        mode: usize,
        dims: &[usize],
        mut buf: Vec<f64>,
    ) -> Result<DenseTensor> {
        let shape = Shape::new(dims);
        shape.check_mode(mode)?;
        let rows = shape.dim(mode);
        let cols = shape.unfold_cols(mode);
        if matrix.shape() != (rows, cols) {
            return Err(TensorError::ShapeMismatch {
                expected: vec![rows, cols],
                actual: vec![matrix.rows(), matrix.cols()],
                op: "fold",
            });
        }
        let total = shape.num_elements();
        buf.clear();
        buf.resize(total, 0.0);
        let mut out = DenseTensor { shape, data: buf };
        let mut idx = vec![0usize; out.shape.order()];
        for lin in 0..total {
            out.shape.multi_index_into(lin, &mut idx);
            let r = idx[mode];
            let c = out.shape.unfold_col_index(mode, &idx);
            out.data[lin] = matrix.get(r, c);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = DenseTensor::from_fn(&[2, 3], |idx| (idx[0] * 3 + idx[1]) as f64);
        assert_eq!(t.get(&[0, 0]), 0.0);
        assert_eq!(t.get(&[1, 2]), 5.0);
        assert_eq!(t.num_elements(), 6);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(DenseTensor::from_vec(&[2, 2], vec![0.0; 3]).is_err());
        assert!(DenseTensor::from_vec(&[2, 2], vec![0.0; 4]).is_ok());
    }

    #[test]
    fn try_get_bounds() {
        let t = DenseTensor::zeros(&[2, 2]);
        assert!(t.try_get(&[1, 1]).is_ok());
        assert!(t.try_get(&[2, 0]).is_err());
    }

    #[test]
    fn unfold_fold_round_trip() {
        let t = DenseTensor::from_fn(&[3, 4, 2], |idx| {
            (idx[0] + 10 * idx[1] + 100 * idx[2]) as f64
        });
        for mode in 0..3 {
            let m = t.unfold(mode).unwrap();
            let back = DenseTensor::fold(&m, mode, t.dims()).unwrap();
            assert_eq!(back, t, "round trip failed for mode {mode}");
        }
    }

    #[test]
    fn unfold_kolda_example() {
        // Kolda & Bader, SIAM Review 2009, example 3.1-style check on a
        // 3x4x2 tensor with X(:,:,1) = [[1,4,7,10],[2,5,8,11],[3,6,9,12]]
        // and X(:,:,2) = the same + 12.
        let t = DenseTensor::from_fn(&[3, 4, 2], |idx| {
            (1 + idx[0] + 3 * idx[1] + 12 * idx[2]) as f64
        });
        let m0 = t.unfold(0).unwrap();
        // Mode-0 unfolding: rows are the 3 first-mode slices; column j+4k.
        assert_eq!(m0.shape(), (3, 8));
        assert_eq!(m0.get(0, 0), 1.0);
        assert_eq!(m0.get(1, 0), 2.0);
        assert_eq!(m0.get(0, 1), 4.0);
        assert_eq!(m0.get(0, 4), 13.0);
        let m1 = t.unfold(1).unwrap();
        assert_eq!(m1.shape(), (4, 6));
        assert_eq!(m1.get(0, 0), 1.0);
        assert_eq!(m1.get(1, 0), 4.0);
        assert_eq!(m1.get(0, 1), 2.0);
        assert_eq!(m1.get(0, 3), 13.0);
    }

    #[test]
    fn unfold_into_and_fold_into_match_allocating_variants() {
        let t = DenseTensor::from_fn(&[3, 4, 2], |idx| {
            ((idx[0] * 8 + idx[1] * 2 + idx[2]) as f64 * 0.19).sin()
        });
        let mut m = Matrix::zeros(1, 1);
        for mode in 0..3 {
            t.unfold_into(mode, &mut m).unwrap();
            assert_eq!(m, t.unfold(mode).unwrap());
            // A recycled, dirty buffer must not leak into the result.
            let back = DenseTensor::fold_into(&m, mode, t.dims(), vec![7.0; 3]).unwrap();
            assert_eq!(back, t);
        }
        assert!(t.unfold_into(3, &mut m).is_err());
        assert!(DenseTensor::fold_into(&m, 0, &[5, 5], Vec::new()).is_err());
    }

    #[test]
    fn unfold_invalid_mode() {
        let t = DenseTensor::zeros(&[2, 2]);
        assert!(t.unfold(2).is_err());
    }

    #[test]
    fn fold_validates_shape() {
        let m = Matrix::zeros(2, 5);
        assert!(DenseTensor::fold(&m, 0, &[2, 2, 2]).is_err());
    }

    #[test]
    fn frobenius_norm_matches_unfold_norm() {
        let t = DenseTensor::from_fn(&[2, 3, 4], |idx| ((idx[0] + idx[1] * idx[2]) as f64).sin());
        let n_t = t.frobenius_norm();
        for mode in 0..3 {
            let n_m = t.unfold(mode).unwrap().frobenius_norm();
            assert!((n_t - n_m).abs() < 1e-12);
        }
    }

    #[test]
    fn arithmetic() {
        let a = DenseTensor::from_fn(&[2, 2], |i| (i[0] + i[1]) as f64);
        let b = a.scaled(2.0);
        let s = a.add(&b).unwrap();
        assert_eq!(s.get(&[1, 1]), 6.0);
        let d = b.sub(&a).unwrap();
        assert_eq!(d, a);
        let other = DenseTensor::zeros(&[2, 3]);
        assert!(a.add(&other).is_err());
        assert!(a.sub(&other).is_err());
    }

    #[test]
    fn max_abs_on_signed_data() {
        let t = DenseTensor::from_vec(&[3], vec![1.0, -5.0, 2.0]).unwrap();
        assert_eq!(t.max_abs(), 5.0);
    }

    #[test]
    fn slice_extracts_fixed_mode() {
        let t = DenseTensor::from_fn(&[2, 3, 4], |i| (i[0] * 100 + i[1] * 10 + i[2]) as f64);
        let s = t.slice(1, 2).unwrap();
        assert_eq!(s.dims(), &[2, 4]);
        assert_eq!(s.get(&[1, 3]), t.get(&[1, 2, 3]));
        assert_eq!(s.get(&[0, 0]), t.get(&[0, 2, 0]));
        assert!(t.slice(3, 0).is_err());
        assert!(t.slice(1, 5).is_err());
    }

    #[test]
    fn slices_partition_the_norm() {
        let t = DenseTensor::from_fn(&[3, 4], |i| ((i[0] * 4 + i[1]) as f64).sin());
        let total_sq: f64 = t.frobenius_norm().powi(2);
        let slices_sq: f64 = (0..3)
            .map(|i| t.slice(0, i).unwrap().frobenius_norm().powi(2))
            .sum();
        assert!((total_sq - slices_sq).abs() < 1e-12);
    }

    #[test]
    fn permute_modes_round_trip() {
        let t = DenseTensor::from_fn(&[2, 3, 4], |i| (i[0] * 100 + i[1] * 10 + i[2]) as f64);
        let p = t.permute_modes(&[2, 0, 1]).unwrap();
        assert_eq!(p.dims(), &[4, 2, 3]);
        assert_eq!(p.get(&[3, 1, 2]), t.get(&[1, 2, 3]));
        // Inverse permutation restores the original.
        let back = p.permute_modes(&[1, 2, 0]).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn permute_modes_identity() {
        let t = DenseTensor::from_fn(&[2, 2], |i| (i[0] + 2 * i[1]) as f64);
        assert_eq!(t.permute_modes(&[0, 1]).unwrap(), t);
    }

    #[test]
    fn permute_modes_rejects_bad_perms() {
        let t = DenseTensor::zeros(&[2, 3]);
        assert!(t.permute_modes(&[0]).is_err());
        assert!(t.permute_modes(&[0, 0]).is_err());
        assert!(t.permute_modes(&[0, 2]).is_err());
    }

    #[test]
    fn zero_order_tensor_is_empty() {
        let t = DenseTensor::zeros(&[]);
        assert_eq!(t.num_elements(), 0);
        assert_eq!(t.frobenius_norm(), 0.0);
    }
}
