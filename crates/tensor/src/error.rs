//! Error type for tensor operations.

use m2td_guard::GuardError;
use m2td_linalg::LinalgError;
use std::fmt;

/// Errors produced by tensor kernels.
#[derive(Debug, Clone, PartialEq)]
pub enum TensorError {
    /// Two tensors (or a tensor and an index) disagreed on shape.
    ShapeMismatch {
        /// The expected shape.
        expected: Vec<usize>,
        /// The shape that was actually supplied.
        actual: Vec<usize>,
        /// The operation that was attempted.
        op: &'static str,
    },
    /// A mode id was `>=` the tensor order.
    InvalidMode {
        /// The offending mode.
        mode: usize,
        /// The tensor order (number of modes).
        order: usize,
    },
    /// A multi-index had a component outside the mode's extent.
    IndexOutOfBounds {
        /// The offending multi-index.
        index: Vec<usize>,
        /// The tensor shape.
        shape: Vec<usize>,
    },
    /// The same coordinate was supplied more than once when constructing a
    /// sparse tensor (each cell holds at most one simulation result).
    DuplicateEntry {
        /// The coordinate that appeared more than once.
        index: Vec<usize>,
        /// The tensor shape.
        shape: Vec<usize>,
    },
    /// A target rank exceeded the corresponding mode size.
    RankTooLarge {
        /// The mode whose rank was too large.
        mode: usize,
        /// The requested rank.
        requested: usize,
        /// The mode size.
        available: usize,
    },
    /// The number of ranks/factors did not match the tensor order.
    WrongNumberOfRanks {
        /// Number supplied.
        supplied: usize,
        /// Tensor order.
        order: usize,
    },
    /// A tensor with zero total elements was supplied where data is needed.
    EmptyTensor,
    /// Saving or loading a tensor artifact failed (I/O or malformed data).
    Serialization {
        /// Explanation of the failure.
        message: String,
    },
    /// An underlying linear-algebra kernel failed.
    Linalg(LinalgError),
    /// A numerical guard detected a condition the installed policy refuses
    /// to repair (rank deficiency, ill-conditioning, non-finite values).
    Guard(GuardError),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch {
                expected,
                actual,
                op,
            } => write!(
                f,
                "shape mismatch in {op}: expected {expected:?}, got {actual:?}"
            ),
            TensorError::InvalidMode { mode, order } => {
                write!(f, "mode {mode} is invalid for an order-{order} tensor")
            }
            TensorError::IndexOutOfBounds { index, shape } => {
                write!(f, "index {index:?} out of bounds for shape {shape:?}")
            }
            TensorError::DuplicateEntry { index, shape } => {
                write!(f, "duplicate entry at {index:?} for shape {shape:?}")
            }
            TensorError::RankTooLarge {
                mode,
                requested,
                available,
            } => write!(
                f,
                "rank {requested} for mode {mode} exceeds mode size {available}"
            ),
            TensorError::WrongNumberOfRanks { supplied, order } => {
                write!(f, "{supplied} ranks supplied for an order-{order} tensor")
            }
            TensorError::EmptyTensor => write!(f, "tensor has no elements"),
            TensorError::Serialization { message } => {
                write!(f, "serialization error: {message}")
            }
            TensorError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            TensorError::Guard(e) => write!(f, "numerical guard violation: {e}"),
        }
    }
}

impl std::error::Error for TensorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TensorError::Linalg(e) => Some(e),
            TensorError::Guard(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for TensorError {
    fn from(e: LinalgError) -> Self {
        TensorError::Linalg(e)
    }
}

impl From<GuardError> for TensorError {
    fn from(e: GuardError) -> Self {
        // An underlying linalg failure inside a guarded call is still a
        // plain linalg error to tensor consumers.
        match e {
            GuardError::Linalg(l) => TensorError::Linalg(l),
            other => TensorError::Guard(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TensorError::RankTooLarge {
            mode: 2,
            requested: 9,
            available: 4,
        };
        let s = e.to_string();
        assert!(s.contains('9') && s.contains('4') && s.contains('2'));
    }

    #[test]
    fn duplicate_entry_display_names_the_cell() {
        let e = TensorError::DuplicateEntry {
            index: vec![1, 2],
            shape: vec![3, 3],
        };
        let s = e.to_string();
        assert!(s.contains("duplicate") && s.contains("[1, 2]"));
    }

    #[test]
    fn linalg_errors_convert_and_chain() {
        let e: TensorError = LinalgError::SingularMatrix.into();
        assert!(matches!(e, TensorError::Linalg(_)));
        use std::error::Error;
        assert!(e.source().is_some());
    }
}
