//! HOOI — Higher-Order Orthogonal Iteration.
//!
//! An optional refinement over HOSVD (extension beyond the paper, used by
//! the `ablation_hooi` bench): starting from the HOSVD factors, each sweep
//! re-optimizes every factor against the projection of the tensor onto the
//! other factors, monotonically improving the Tucker fit.

use crate::dense::DenseTensor;
use crate::hosvd::{
    dense_core_with, gram_factor, hosvd_dense, hosvd_sparse_exact, sparse_core_with, CoreOrdering,
};
use crate::sparse::SparseTensor;
use crate::ttm::{ttm_dense_transposed_ws, ttm_sparse_transposed};
use crate::tucker::TuckerDecomp;
use crate::workspace::Workspace;
use crate::Result;
use m2td_linalg::Matrix;

/// Options controlling the HOOI iteration.
#[derive(Debug, Clone, Copy)]
pub struct HooiOptions {
    /// Maximum number of full sweeps over all modes.
    pub max_sweeps: usize,
    /// Convergence threshold on the relative change of the core norm
    /// between sweeps.
    pub tolerance: f64,
}

impl Default for HooiOptions {
    fn default() -> Self {
        Self {
            max_sweeps: 10,
            tolerance: 1e-8,
        }
    }
}

/// Result alias carrying the decomposition and the number of sweeps used.
pub type HooiOutcome = (TuckerDecomp, usize);

/// HOOI on a dense tensor. Initializes with [`hosvd_dense`].
pub fn hooi_dense(x: &DenseTensor, ranks: &[usize], opts: HooiOptions) -> Result<HooiOutcome> {
    let init = hosvd_dense(x, ranks)?;
    let mut factors = init.factors;
    let mut prev_core_norm = init.core.frobenius_norm();
    let mut sweeps = 0;
    // One workspace across all sweeps: the chain intermediates recur with
    // the same handful of sizes, so buffers settle into steady-state reuse.
    let mut ws = Workspace::new();

    for sweep in 1..=opts.max_sweeps {
        sweeps = sweep;
        for mode in 0..x.order() {
            // Project onto all factors except `mode`, then refit that mode.
            let mut acc: Option<DenseTensor> = None;
            for (m, f) in factors.iter().enumerate() {
                if m == mode {
                    continue;
                }
                let next = match &acc {
                    None => ttm_dense_transposed_ws(x, m, f, &mut ws)?,
                    Some(t) => ttm_dense_transposed_ws(t, m, f, &mut ws)?,
                };
                if let Some(t) = acc.take() {
                    ws.recycle_tensor(t);
                }
                acc = Some(next);
            }
            let projected = acc.expect("order >= 2 for HOOI inputs");
            let unfolded = projected.unfold(mode)?;
            ws.recycle_tensor(projected);
            let gram = unfolded.gram_rows();
            factors[mode] = gram_factor(&gram, ranks[mode], mode)?;
        }
        let core = dense_core_with(x, &factors, CoreOrdering::BestShrinkFirst, &mut ws)?;
        let norm = core.frobenius_norm();
        let rel_change = if prev_core_norm > 0.0 {
            (norm - prev_core_norm).abs() / prev_core_norm
        } else {
            0.0
        };
        prev_core_norm = norm;
        ws.recycle_tensor(core);
        if rel_change < opts.tolerance {
            break;
        }
    }

    let core = dense_core_with(x, &factors, CoreOrdering::BestShrinkFirst, &mut ws)?;
    Ok((TuckerDecomp::new(core, factors)?, sweeps))
}

/// HOOI on a sparse tensor. Initializes with the sparse HOSVD; the first
/// projection of every sweep uses the sparse scatter kernel so the cost per
/// sweep stays `O(nnz · r)` plus dense work on the shrunk intermediates.
///
/// While `m2td_sketch` is [installed](m2td_sketch::install), dispatches to
/// the randomized route (`crate::sketch`): MACH policies run the sweeps on
/// a thin entry sample (recovering the final core from the full tensor),
/// the Gaussian policy sketches only the HOSVD initialization. Either way
/// the measured reconstruction error is gated by
/// `m2td_guard::with_error_budget`, falling back to
/// [`hooi_sparse_exact`] on a violation.
pub fn hooi_sparse(x: &SparseTensor, ranks: &[usize], opts: HooiOptions) -> Result<HooiOutcome> {
    if m2td_sketch::installed() {
        return crate::sketch::hooi_sparse_guarded(x, ranks, opts, &m2td_sketch::config());
    }
    hooi_sparse_exact(x, ranks, opts)
}

/// The never-randomized sparse HOOI: exact HOSVD initialization, exact
/// sweeps over the full tensor.
pub fn hooi_sparse_exact(
    x: &SparseTensor,
    ranks: &[usize],
    opts: HooiOptions,
) -> Result<HooiOutcome> {
    let init = hosvd_sparse_exact(x, ranks)?;
    hooi_sparse_from(x, init, ranks, opts)
}

/// The HOOI sweep loop from an explicit initialization (exact or
/// sketched): re-optimizes every factor per sweep, then recovers the core
/// from the **full** tensor.
pub(crate) fn hooi_sparse_from(
    x: &SparseTensor,
    init: TuckerDecomp,
    ranks: &[usize],
    opts: HooiOptions,
) -> Result<HooiOutcome> {
    let mut factors = init.factors;
    let mut prev_core_norm = init.core.frobenius_norm();
    let mut sweeps = 0;
    let mut ws = Workspace::new();

    for sweep in 1..=opts.max_sweeps {
        sweeps = sweep;
        for mode in 0..x.order() {
            let projected = project_all_but_sparse(x, &factors, mode, &mut ws)?;
            let unfolded = projected.unfold(mode)?;
            ws.recycle_tensor(projected);
            let gram = unfolded.gram_rows();
            factors[mode] = gram_factor(&gram, ranks[mode], mode)?;
        }
        let core = sparse_core_with(x, &factors, CoreOrdering::BestShrinkFirst, &mut ws)?;
        let norm = core.frobenius_norm();
        let rel_change = if prev_core_norm > 0.0 {
            (norm - prev_core_norm).abs() / prev_core_norm
        } else {
            0.0
        };
        prev_core_norm = norm;
        ws.recycle_tensor(core);
        if rel_change < opts.tolerance {
            break;
        }
    }

    let core = sparse_core_with(x, &factors, CoreOrdering::BestShrinkFirst, &mut ws)?;
    Ok((TuckerDecomp::new(core, factors)?, sweeps))
}

/// Projects a sparse tensor onto every factor except `skip`.
///
/// The first product uses the sparse scatter kernel (the tensor's
/// mode-sorted index is cached, so repeated sweeps pay for the sort once
/// per mode); the rest of the chain runs on workspace-backed dense TTMs.
fn project_all_but_sparse(
    x: &SparseTensor,
    factors: &[Matrix],
    skip: usize,
    ws: &mut Workspace,
) -> Result<DenseTensor> {
    let mut acc: Option<DenseTensor> = None;
    for (m, f) in factors.iter().enumerate() {
        if m == skip {
            continue;
        }
        let next = match &acc {
            None => ttm_sparse_transposed(x, m, f)?,
            Some(t) => ttm_dense_transposed_ws(t, m, f, ws)?,
        };
        if let Some(t) = acc.take() {
            ws.recycle_tensor(t);
        }
        acc = Some(next);
    }
    Ok(acc.expect("order >= 2 for HOOI inputs"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_tensor() -> DenseTensor {
        DenseTensor::from_fn(&[5, 4, 3], |i| {
            ((i[0] + 1) * (i[1] + 2)) as f64 + ((i[2] * (i[0] + 1)) as f64).sin() * 3.0
        })
    }

    #[test]
    fn hooi_never_worse_than_hosvd() {
        let x = test_tensor();
        let ranks = [2, 2, 2];
        let hosvd_err = hosvd_dense(&x, &ranks).unwrap().relative_error(&x).unwrap();
        let (hooi, sweeps) = hooi_dense(&x, &ranks, HooiOptions::default()).unwrap();
        let hooi_err = hooi.relative_error(&x).unwrap();
        assert!(sweeps >= 1);
        assert!(
            hooi_err <= hosvd_err + 1e-10,
            "HOOI err {hooi_err} worse than HOSVD err {hosvd_err}"
        );
    }

    #[test]
    fn hooi_exact_at_full_rank() {
        let x = test_tensor();
        let (t, _) = hooi_dense(&x, &[5, 4, 3], HooiOptions::default()).unwrap();
        assert!(t.relative_error(&x).unwrap() < 1e-9);
    }

    #[test]
    fn sparse_hooi_matches_dense_hooi() {
        let x = test_tensor();
        let s = SparseTensor::from_dense(&x);
        let opts = HooiOptions {
            max_sweeps: 4,
            tolerance: 0.0, // force all sweeps in both variants
        };
        let (td, _) = hooi_dense(&x, &[2, 2, 2], opts).unwrap();
        let (ts, _) = hooi_sparse(&s, &[2, 2, 2], opts).unwrap();
        let ed = td.relative_error(&x).unwrap();
        let es = ts.relative_error(&x).unwrap();
        assert!((ed - es).abs() < 1e-8, "dense {ed} vs sparse {es}");
    }

    #[test]
    fn hooi_respects_max_sweeps() {
        let x = test_tensor();
        let opts = HooiOptions {
            max_sweeps: 1,
            tolerance: 0.0,
        };
        let (_, sweeps) = hooi_dense(&x, &[2, 2, 2], opts).unwrap();
        assert_eq!(sweeps, 1);
    }

    #[test]
    fn hooi_propagates_rank_errors() {
        let x = test_tensor();
        assert!(hooi_dense(&x, &[9, 2, 2], HooiOptions::default()).is_err());
    }
}
