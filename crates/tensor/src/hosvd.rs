//! HOSVD — Higher-Order SVD (Algorithm 1 of the paper).
//!
//! For each mode `n`, the factor `U⁽ⁿ⁾` collects the `r_n` leading left
//! singular vectors of the mode-`n` matricization; the core is then
//! recovered as `G = X ×₁ U⁽¹⁾ᵀ ⋯ ×_N U⁽ᴺ⁾ᵀ`.
//!
//! The left singular vectors are obtained through the Gram trick
//! (eigenvectors of `X₍ₙ₎X₍ₙ₎ᵀ`, an `I_n × I_n` problem) — see
//! [`m2td_linalg::gram_left_singular_vectors`] — which keeps both dense and
//! sparse HOSVD linear in the number of stored entries.

use crate::dense::DenseTensor;
use crate::error::TensorError;
use crate::plan::TtmPlan;
use crate::sparse::SparseTensor;
use crate::tucker::TuckerDecomp;
use crate::workspace::Workspace;
use crate::Result;
use m2td_linalg::{symmetric_eig, Matrix};

/// Ordering strategy for the TTM chain that recovers the core tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreOrdering {
    /// Multiply modes in natural order `1, …, N`.
    Natural,
    /// Multiply the mode with the largest shrink ratio `I_n / r_n` first,
    /// minimizing the size of the intermediate tensors. This is the
    /// default and the subject of the `ablation_ttm_order` bench.
    BestShrinkFirst,
}

/// Validates a rank vector against a shape.
fn check_ranks(dims: &[usize], ranks: &[usize]) -> Result<()> {
    if ranks.len() != dims.len() {
        return Err(TensorError::WrongNumberOfRanks {
            supplied: ranks.len(),
            order: dims.len(),
        });
    }
    for (mode, (&r, &d)) in ranks.iter().zip(dims.iter()).enumerate() {
        if r == 0 || r > d {
            return Err(TensorError::RankTooLarge {
                mode,
                requested: r,
                available: d,
            });
        }
    }
    Ok(())
}

/// Returns the `r` leading eigenvectors of a mode-`mode` Gram matrix as a
/// factor, routed through the numerical guard layer: with `m2td-guard`
/// installed the spectrum is checked for effective rank and conditioning
/// (and may be clamped per the installed policy); uninstalled, this is a
/// plain eig + truncation.
pub(crate) fn gram_factor(gram: &Matrix, r: usize, mode: usize) -> Result<Matrix> {
    Ok(m2td_guard::gram_factor("tensor.gram", Some(mode), gram, r)?)
}

/// Recovers the core `G = X ×₁ U⁽¹⁾ᵀ ⋯ ×_N U⁽ᴺ⁾ᵀ` from a sparse tensor.
///
/// Plans the chain with [`TtmPlan`] and executes it semi-sparse: the
/// intermediate keeps sparse coordinates over the not-yet-contracted
/// modes until the densify threshold trips, so early steps cost
/// `O(stored · r)` rather than `O(dense · r)`.
pub fn sparse_core(
    x: &SparseTensor,
    factors: &[Matrix],
    ordering: CoreOrdering,
) -> Result<DenseTensor> {
    sparse_core_with(x, factors, ordering, &mut Workspace::new())
}

/// [`sparse_core`] with an explicit [`Workspace`], so callers running many
/// chains (HOOI sweeps, per-chunk reducers) reuse buffers across calls.
pub fn sparse_core_with(
    x: &SparseTensor,
    factors: &[Matrix],
    ordering: CoreOrdering,
    ws: &mut Workspace,
) -> Result<DenseTensor> {
    let ranks: Vec<usize> = factors.iter().map(|f| f.cols()).collect();
    let plan = TtmPlan::with_ordering(x.dims(), &ranks, ordering)?;
    let _span = m2td_obs::span!("tensor.sparse_core");
    plan.execute_sparse(x, factors, ws)
}

/// Recovers the core from a dense tensor.
pub fn dense_core(
    x: &DenseTensor,
    factors: &[Matrix],
    ordering: CoreOrdering,
) -> Result<DenseTensor> {
    dense_core_with(x, factors, ordering, &mut Workspace::new())
}

/// [`dense_core`] with an explicit [`Workspace`] (see [`sparse_core_with`]).
pub fn dense_core_with(
    x: &DenseTensor,
    factors: &[Matrix],
    ordering: CoreOrdering,
    ws: &mut Workspace,
) -> Result<DenseTensor> {
    let ranks: Vec<usize> = factors.iter().map(|f| f.cols()).collect();
    let plan = TtmPlan::with_ordering(x.dims(), &ranks, ordering)?;
    plan.execute_dense(x, factors, ws)
}

/// Suggests per-mode target ranks: for every mode, the smallest rank whose
/// leading Gram eigenvalues capture at least `energy_fraction` of that
/// mode's total energy. A principled alternative to hand-picking a uniform
/// rank — exposed to users via `m2td-cli --rank auto`-style workflows.
///
/// # Errors
///
/// [`TensorError::EmptyTensor`] for an all-null tensor; an invalid
/// fraction (outside `(0, 1]`) is clamped into range.
pub fn suggest_ranks(x: &SparseTensor, energy_fraction: f64) -> Result<Vec<usize>> {
    if x.nnz() == 0 {
        return Err(TensorError::EmptyTensor);
    }
    let target = energy_fraction.clamp(f64::MIN_POSITIVE, 1.0);
    let mut ranks = Vec::with_capacity(x.order());
    for mode in 0..x.order() {
        let gram = x.unfold_gram(mode)?;
        let eig = symmetric_eig(&gram)?;
        // Gram eigenvalues are the squared singular values of the
        // matricization; clamp tiny negatives from round-off.
        let total: f64 = eig.eigenvalues.iter().map(|&l| l.max(0.0)).sum();
        if total <= 0.0 {
            ranks.push(1);
            continue;
        }
        let mut acc = 0.0;
        let mut r = 0;
        for &l in &eig.eigenvalues {
            acc += l.max(0.0);
            r += 1;
            if acc >= target * total {
                break;
            }
        }
        ranks.push(r.max(1));
    }
    Ok(ranks)
}

/// HOSVD of a dense tensor at the given per-mode target ranks.
///
/// # Errors
///
/// * [`TensorError::WrongNumberOfRanks`] / [`TensorError::RankTooLarge`]
///   for invalid rank vectors.
/// * [`TensorError::EmptyTensor`] for tensors without elements.
pub fn hosvd_dense(x: &DenseTensor, ranks: &[usize]) -> Result<TuckerDecomp> {
    check_ranks(x.dims(), ranks)?;
    if x.num_elements() == 0 {
        return Err(TensorError::EmptyTensor);
    }
    // The per-mode Gram/eig factor computations are independent; fan them
    // out over the pool (mode order in `factors` is preserved).
    let modes: Vec<(usize, usize)> = ranks.iter().copied().enumerate().collect();
    let factors = m2td_par::par_map(&modes, |&(mode, r)| -> Result<_> {
        let unfolded = x.unfold(mode)?;
        let gram = unfolded.gram_rows();
        gram_factor(&gram, r, mode)
    })
    .into_iter()
    .collect::<Result<Vec<_>>>()?;
    let core = dense_core(x, &factors, CoreOrdering::BestShrinkFirst)?;
    TuckerDecomp::new(core, factors)
}

/// HOSVD of a sparse tensor at the given per-mode target ranks.
///
/// Null cells are treated as zeros, exactly as the paper's conventional
/// baselines decompose a sampled ensemble tensor.
///
/// ```
/// use m2td_tensor::{hosvd_sparse, SparseTensor};
///
/// let x = SparseTensor::from_entries(
///     &[4, 4, 4],
///     &[(vec![0, 1, 2], 3.0), (vec![3, 2, 1], -1.0)],
/// ).unwrap();
/// let tucker = hosvd_sparse(&x, &[2, 2, 2]).unwrap();
/// // Two isolated cells are exactly representable at rank 2.
/// let err = tucker.relative_error(&x.to_dense().unwrap()).unwrap();
/// assert!(err < 1e-9);
/// ```
///
/// # Errors
///
/// As [`hosvd_dense`]; an all-null tensor additionally errors with
/// [`TensorError::EmptyTensor`].
///
/// # Sketched route
///
/// While `m2td_sketch` is [installed](m2td_sketch::install), this
/// dispatches to the randomized route (`crate::sketch`): factors from
/// sketched Grams or a MACH entry sample per the installed policy, gated
/// by `m2td_guard::with_error_budget` on the *measured* reconstruction
/// error, falling back to [`hosvd_sparse_exact`] when the budget is
/// violated. Fixed sketch seed ⇒ bitwise-identical results at every
/// thread count.
pub fn hosvd_sparse(x: &SparseTensor, ranks: &[usize]) -> Result<TuckerDecomp> {
    check_ranks(x.dims(), ranks)?;
    if x.nnz() == 0 {
        return Err(TensorError::EmptyTensor);
    }
    if m2td_sketch::installed() {
        return crate::sketch::hosvd_sparse_guarded(x, ranks, &m2td_sketch::config());
    }
    hosvd_sparse_exact(x, ranks)
}

/// The exact sparse HOSVD route: per-mode sparse Grams and guarded
/// eigensolves, never randomized. [`hosvd_sparse`] dispatches here while
/// sketching is uninstalled, and the sketched route falls back here on a
/// budget violation.
pub fn hosvd_sparse_exact(x: &SparseTensor, ranks: &[usize]) -> Result<TuckerDecomp> {
    check_ranks(x.dims(), ranks)?;
    if x.nnz() == 0 {
        return Err(TensorError::EmptyTensor);
    }
    let _span = m2td_obs::span!("tensor.hosvd");
    // Per-mode sparse Gram + eig are independent; fan out over the pool.
    let modes: Vec<(usize, usize)> = ranks.iter().copied().enumerate().collect();
    let factors = m2td_par::par_map(&modes, |&(mode, r)| -> Result<_> {
        let gram = x.unfold_gram(mode)?;
        gram_factor(&gram, r, mode)
    })
    .into_iter()
    .collect::<Result<Vec<_>>>()?;
    let core = sparse_core(x, &factors, CoreOrdering::BestShrinkFirst)?;
    TuckerDecomp::new(core, factors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::plan_mode_order;

    fn test_tensor() -> DenseTensor {
        DenseTensor::from_fn(&[4, 5, 3], |i| {
            ((i[0] + 1) * (i[1] + 2)) as f64 + ((i[2] * i[0]) as f64).sin()
        })
    }

    #[test]
    fn full_rank_hosvd_is_exact() {
        let x = test_tensor();
        let t = hosvd_dense(&x, &[4, 5, 3]).unwrap();
        assert!(t.relative_error(&x).unwrap() < 1e-10);
    }

    #[test]
    fn rank_one_tensor_decomposes_exactly_at_rank_one() {
        let x = DenseTensor::from_fn(&[3, 4, 5], |i| {
            (i[0] + 1) as f64 * (i[1] + 1) as f64 * (i[2] + 1) as f64
        });
        let t = hosvd_dense(&x, &[1, 1, 1]).unwrap();
        assert!(t.relative_error(&x).unwrap() < 1e-12);
    }

    #[test]
    fn truncation_error_decreases_with_rank() {
        let x = test_tensor();
        let e1 = hosvd_dense(&x, &[1, 1, 1])
            .unwrap()
            .relative_error(&x)
            .unwrap();
        let e2 = hosvd_dense(&x, &[2, 2, 2])
            .unwrap()
            .relative_error(&x)
            .unwrap();
        let e3 = hosvd_dense(&x, &[4, 5, 3])
            .unwrap()
            .relative_error(&x)
            .unwrap();
        assert!(e1 >= e2 - 1e-12, "e1={e1} e2={e2}");
        assert!(e2 >= e3 - 1e-12, "e2={e2} e3={e3}");
    }

    #[test]
    fn hosvd_error_bound_holds() {
        // HOSVD truncation satisfies ‖X − X̃‖ ≤ √N · best rank-(r…) error;
        // a weaker easily-checkable property: relative error ≤ 1 for any
        // rank, with orthonormal factors.
        let x = test_tensor();
        let t = hosvd_dense(&x, &[2, 2, 2]).unwrap();
        assert!(t.relative_error(&x).unwrap() <= 1.0 + 1e-12);
        for f in &t.factors {
            assert!(f.orthonormality_defect() < 1e-9);
        }
    }

    #[test]
    fn sparse_hosvd_matches_dense_on_same_data() {
        let x = test_tensor();
        let s = SparseTensor::from_dense(&x);
        let td = hosvd_dense(&x, &[2, 3, 2]).unwrap();
        let ts = hosvd_sparse(&s, &[2, 3, 2]).unwrap();
        let ed = td.relative_error(&x).unwrap();
        let es = ts.relative_error(&x).unwrap();
        assert!(
            (ed - es).abs() < 1e-8,
            "dense err {ed} vs sparse err {es} should agree"
        );
    }

    #[test]
    fn core_orderings_agree() {
        let x = test_tensor();
        let s = SparseTensor::from_dense(&x);
        let factors: Vec<Matrix> = (0..3)
            .map(|m| gram_factor(&s.unfold_gram(m).unwrap(), 2, m).unwrap())
            .collect();
        let natural = sparse_core(&s, &factors, CoreOrdering::Natural).unwrap();
        let best = sparse_core(&s, &factors, CoreOrdering::BestShrinkFirst).unwrap();
        let d = natural.sub(&best).unwrap().frobenius_norm();
        assert!(d < 1e-10, "orderings disagree by {d}");
    }

    #[test]
    fn invalid_ranks_are_rejected() {
        let x = test_tensor();
        assert!(matches!(
            hosvd_dense(&x, &[4, 5]),
            Err(TensorError::WrongNumberOfRanks { .. })
        ));
        assert!(matches!(
            hosvd_dense(&x, &[5, 5, 3]),
            Err(TensorError::RankTooLarge { .. })
        ));
        assert!(matches!(
            hosvd_dense(&x, &[0, 5, 3]),
            Err(TensorError::RankTooLarge { .. })
        ));
    }

    #[test]
    fn empty_sparse_tensor_rejected() {
        let s = SparseTensor::empty(&[3, 3]);
        assert!(matches!(
            hosvd_sparse(&s, &[1, 1]),
            Err(TensorError::EmptyTensor)
        ));
    }

    #[test]
    fn very_sparse_tensor_decomposes_without_panic() {
        let s =
            SparseTensor::from_entries(&[6, 6, 6], &[(vec![0, 0, 0], 1.0), (vec![5, 5, 5], -2.0)])
                .unwrap();
        let t = hosvd_sparse(&s, &[2, 2, 2]).unwrap();
        // Two isolated entries are exactly representable at rank 2.
        let dense = s.to_dense().unwrap();
        assert!(t.relative_error(&dense).unwrap() < 1e-9);
    }

    #[test]
    fn suggest_ranks_at_full_energy_reconstruct_exactly() {
        // Whatever ranks 100% energy suggests, HOSVD at those ranks must
        // be an (FP-)exact decomposition.
        let x = test_tensor();
        let s = SparseTensor::from_dense(&x);
        let ranks = suggest_ranks(&s, 1.0).unwrap();
        let tucker = hosvd_sparse(&s, &ranks).unwrap();
        let err = tucker.relative_error(&x).unwrap();
        assert!(err < 1e-6, "full-energy ranks {ranks:?} gave error {err}");
    }

    #[test]
    fn suggest_ranks_low_for_rank_one_data() {
        let x = DenseTensor::from_fn(&[5, 6, 4], |i| {
            (i[0] + 1) as f64 * (i[1] + 1) as f64 * (i[2] + 1) as f64
        });
        let s = SparseTensor::from_dense(&x);
        let ranks = suggest_ranks(&s, 0.999).unwrap();
        assert_eq!(ranks, vec![1, 1, 1], "rank-1 tensor should need rank 1");
    }

    #[test]
    fn suggest_ranks_monotone_in_energy() {
        let x = test_tensor();
        let s = SparseTensor::from_dense(&x);
        let lo = suggest_ranks(&s, 0.5).unwrap();
        let hi = suggest_ranks(&s, 0.99).unwrap();
        for (a, b) in lo.iter().zip(hi.iter()) {
            assert!(a <= b);
        }
        // Suggested ranks actually achieve the target accuracy-ish: the
        // HOSVD error at the 0.99-energy ranks is small.
        let tucker = hosvd_sparse(&s, &hi).unwrap();
        let err = tucker.relative_error(&x).unwrap();
        assert!(err < 0.2, "suggested ranks gave error {err}");
    }

    #[test]
    fn suggest_ranks_rejects_empty() {
        let s = SparseTensor::empty(&[3, 3]);
        assert!(suggest_ranks(&s, 0.9).is_err());
    }

    #[test]
    fn core_mode_order_prefers_big_shrink() {
        let order = plan_mode_order(&[100, 10, 50], &[2, 5, 2], CoreOrdering::BestShrinkFirst);
        assert_eq!(order[0], 0); // 100/2 = 50 shrink
        assert_eq!(order[1], 2); // 50/2 = 25
        assert_eq!(order[2], 1); // 10/5 = 2
        let natural = plan_mode_order(&[100, 10, 50], &[2, 5, 2], CoreOrdering::Natural);
        assert_eq!(natural, vec![0, 1, 2]);
    }
}
