//! Incrementally grown ensembles with always-current Gram matrices.
//!
//! The paper's related work (Section II-A) distinguishes *multiple-run*
//! ensemble design — sample the whole budget up front, the regime of the
//! main pipeline — from *single-run replication*, where simulation
//! instances are allocated incrementally, each new result informing the
//! next choice. [`IncrementalEnsemble`] supports that regime: adding one
//! simulation cell updates every mode's Gram matrix `X₍ₙ₎X₍ₙ₎ᵀ` in
//! `O(Σ_n column-occupancy)` instead of recomputing from scratch, so the
//! per-mode factor matrices (and with them an M2TD decomposition) can be
//! refreshed after every allocation step.

use crate::error::TensorError;
use crate::shape::Shape;
use crate::sparse::SparseTensor;
use crate::Result;
use m2td_linalg::{symmetric_eig, Matrix};
use std::collections::HashMap;

/// A sparse tensor under construction, with per-mode Gram matrices
/// maintained incrementally.
#[derive(Debug, Clone)]
pub struct IncrementalEnsemble {
    shape: Shape,
    /// Stored entries as (linear index, value).
    entries: HashMap<u64, f64>,
    /// Per mode: unfolding column id → occupants `(mode index, value)`.
    columns: Vec<HashMap<u64, Vec<(u32, f64)>>>,
    /// Per mode: the running Gram matrix `X₍ₙ₎X₍ₙ₎ᵀ`.
    grams: Vec<Matrix>,
}

impl IncrementalEnsemble {
    /// Creates an empty ensemble over the given mode extents.
    pub fn new(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let order = shape.order();
        Self {
            shape,
            entries: HashMap::new(),
            columns: (0..order).map(|_| HashMap::new()).collect(),
            grams: dims.iter().map(|&d| Matrix::zeros(d, d)).collect(),
        }
    }

    /// Number of stored simulation cells.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Mode extents.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Current density.
    pub fn density(&self) -> f64 {
        let total = self.shape.num_elements();
        if total == 0 {
            0.0
        } else {
            self.nnz() as f64 / total as f64
        }
    }

    /// Validates that `index` addresses a fresh cell — the same checks
    /// [`IncrementalEnsemble::add`] performs, without mutating. Lets a
    /// write-ahead caller refuse an un-appliable operation *before*
    /// logging it.
    pub fn validate_new(&self, index: &[usize]) -> Result<()> {
        self.shape.check_index(index)?;
        let lin = self.shape.linear_index(index) as u64;
        if self.entries.contains_key(&lin) {
            return Err(TensorError::DuplicateEntry {
                index: index.to_vec(),
                shape: self.dims().to_vec(),
            });
        }
        Ok(())
    }

    /// Adds one simulation result, updating all mode Grams.
    ///
    /// # Errors
    ///
    /// * [`TensorError::IndexOutOfBounds`] for invalid coordinates.
    /// * [`TensorError::DuplicateEntry`] when the cell already holds a
    ///   result (matching [`SparseTensor::from_entries`]).
    pub fn add(&mut self, index: &[usize], value: f64) -> Result<()> {
        self.shape.check_index(index)?;
        let lin = self.shape.linear_index(index) as u64;
        if self.entries.contains_key(&lin) {
            return Err(TensorError::DuplicateEntry {
                index: index.to_vec(),
                shape: self.dims().to_vec(),
            });
        }
        self.entries.insert(lin, value);

        for (mode, (cols, gram)) in self
            .columns
            .iter_mut()
            .zip(self.grams.iter_mut())
            .enumerate()
        {
            let col_id = self.shape.unfold_col_index(mode, index) as u64;
            let i = index[mode];
            let occupants = cols.entry(col_id).or_default();
            // Rank-1 update: G += v·(e_i cᵀ + c e_iᵀ) + v² e_i e_iᵀ where
            // c is the column's current content. Occupants always have
            // mode indices distinct from `i` — an equal index would be the
            // same tensor cell, rejected as a duplicate above.
            for &(j, vj) in occupants.iter() {
                let j = j as usize;
                debug_assert_ne!(i, j, "duplicate cell slipped past validation");
                let cur = gram.get(i, j);
                gram.set(i, j, cur + value * vj);
                let cur = gram.get(j, i);
                gram.set(j, i, cur + value * vj);
            }
            let cur = gram.get(i, i);
            gram.set(i, i, cur + value * value);
            occupants.push((i as u32, value));
        }
        Ok(())
    }

    /// Restores an ensemble from a persisted `(entries, grams)` pair, as
    /// written by the serve layer's snapshot store.
    ///
    /// The entry set and the `columns` occupancy maps are rebuilt by
    /// re-adding every cell of `sparse` — within one unfolding column each
    /// occupant touches disjoint Gram cells, so occupant order cannot
    /// change the rebuilt structure. The *Gram matrices themselves* are
    /// then overwritten with the stored copies: Gram values depend on the
    /// floating-point order the original absorbs arrived in, which a
    /// sorted re-add cannot reproduce, so recovery must restore them
    /// bitwise rather than recompute them.
    ///
    /// # Errors
    ///
    /// * [`TensorError::WrongNumberOfRanks`] when `grams.len()` differs
    ///   from the tensor order.
    /// * [`TensorError::ShapeMismatch`] when a Gram is not the square
    ///   matrix of its mode extent.
    pub fn from_sparse_with_grams(sparse: &SparseTensor, grams: Vec<Matrix>) -> Result<Self> {
        let dims = sparse.dims();
        if grams.len() != dims.len() {
            return Err(TensorError::WrongNumberOfRanks {
                supplied: grams.len(),
                order: dims.len(),
            });
        }
        for (gram, &d) in grams.iter().zip(dims.iter()) {
            if gram.rows() != d || gram.cols() != d {
                return Err(TensorError::ShapeMismatch {
                    expected: vec![d, d],
                    actual: vec![gram.rows(), gram.cols()],
                    op: "restore gram",
                });
            }
        }
        let mut inc = Self::new(dims);
        for (lin, value) in sparse.iter_linear() {
            let idx = inc.shape.multi_index(lin as usize);
            inc.add(&idx, value)?;
        }
        inc.grams = grams;
        Ok(inc)
    }

    /// The running Gram matrix of mode `n`.
    pub fn gram(&self, mode: usize) -> Result<&Matrix> {
        self.shape.check_mode(mode)?;
        Ok(&self.grams[mode])
    }

    /// The `r` leading factor vectors of mode `n` from the running Gram.
    pub fn factor(&self, mode: usize, r: usize) -> Result<Matrix> {
        let gram = self.gram(mode)?;
        let eig = symmetric_eig(gram)?;
        Ok(eig.eigenvectors.leading_columns(r)?)
    }

    /// Materializes the current ensemble as a [`SparseTensor`].
    pub fn to_sparse(&self) -> SparseTensor {
        let mut pairs: Vec<(u64, f64)> = self.entries.iter().map(|(&l, &v)| (l, v)).collect();
        pairs.sort_unstable_by_key(|&(l, _)| l);
        let (indices, values): (Vec<u64>, Vec<f64>) = pairs.into_iter().unzip();
        SparseTensor::from_sorted_linear(self.dims(), indices, values)
            .expect("entries are validated on insertion")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn add_all(inc: &mut IncrementalEnsemble, cells: &[(Vec<usize>, f64)]) {
        for (idx, v) in cells {
            inc.add(idx, *v).unwrap();
        }
    }

    fn cells() -> Vec<(Vec<usize>, f64)> {
        vec![
            (vec![0, 0, 0], 1.0),
            (vec![1, 0, 0], -2.0),
            (vec![0, 1, 1], 3.0),
            (vec![2, 1, 1], 0.5),
            (vec![2, 2, 0], 4.0),
            (vec![1, 2, 0], -1.5),
        ]
    }

    #[test]
    fn incremental_grams_match_batch_grams() {
        let mut inc = IncrementalEnsemble::new(&[3, 3, 2]);
        add_all(&mut inc, &cells());
        let sparse = inc.to_sparse();
        for mode in 0..3 {
            let incremental = inc.gram(mode).unwrap();
            let batch = sparse.unfold_gram(mode).unwrap();
            let diff = incremental.sub(&batch).unwrap().frobenius_norm();
            assert!(diff < 1e-12, "mode {mode} gram diff {diff}");
        }
    }

    #[test]
    fn grams_stay_consistent_after_every_single_add() {
        let mut inc = IncrementalEnsemble::new(&[3, 3, 2]);
        for (idx, v) in cells() {
            inc.add(&idx, v).unwrap();
            let sparse = inc.to_sparse();
            for mode in 0..3 {
                let diff = inc
                    .gram(mode)
                    .unwrap()
                    .sub(&sparse.unfold_gram(mode).unwrap())
                    .unwrap()
                    .frobenius_norm();
                assert!(diff < 1e-12, "drift after adding {idx:?}");
            }
        }
    }

    #[test]
    fn factors_match_batch_factors() {
        let mut inc = IncrementalEnsemble::new(&[4, 4, 3]);
        // A denser, structured fill.
        let shape = Shape::new(&[4, 4, 3]);
        for l in 0..shape.num_elements() {
            if l % 2 == 0 {
                let idx = shape.multi_index(l);
                inc.add(&idx, ((l as f64) * 0.37).sin() + 1.0).unwrap();
            }
        }
        let sparse = inc.to_sparse();
        for mode in 0..3 {
            let f_inc = inc.factor(mode, 2).unwrap();
            let gram = sparse.unfold_gram(mode).unwrap();
            let eig = symmetric_eig(&gram).unwrap();
            let f_batch = eig.eigenvectors.leading_columns(2).unwrap();
            let diff = f_inc.sub(&f_batch).unwrap().frobenius_norm();
            assert!(diff < 1e-9, "mode {mode} factor diff {diff}");
        }
    }

    #[test]
    fn duplicates_and_bad_indices_rejected() {
        let mut inc = IncrementalEnsemble::new(&[2, 2]);
        inc.add(&[0, 1], 1.0).unwrap();
        assert!(inc.add(&[0, 1], 2.0).is_err());
        assert!(inc.add(&[2, 0], 1.0).is_err());
        assert!(inc.add(&[0], 1.0).is_err());
        assert_eq!(inc.nnz(), 1);
    }

    #[test]
    fn duplicate_cell_reports_duplicate_entry_variant() {
        // Regression: a duplicate used to masquerade as IndexOutOfBounds,
        // hiding the actual failure mode from serve-layer callers.
        let mut inc = IncrementalEnsemble::new(&[2, 3]);
        inc.add(&[1, 2], 4.0).unwrap();
        match inc.add(&[1, 2], 5.0) {
            Err(TensorError::DuplicateEntry { index, shape }) => {
                assert_eq!(index, vec![1, 2]);
                assert_eq!(shape, vec![2, 3]);
            }
            other => panic!("expected DuplicateEntry, got {other:?}"),
        }
        // Genuinely invalid coordinates still report IndexOutOfBounds.
        assert!(matches!(
            inc.add(&[2, 0], 1.0),
            Err(TensorError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn restore_from_sparse_with_grams_is_bitwise_and_resumable() {
        let mut inc = IncrementalEnsemble::new(&[3, 3, 2]);
        add_all(&mut inc, &cells());
        let sparse = inc.to_sparse();
        let grams: Vec<Matrix> = (0..3).map(|m| inc.gram(m).unwrap().clone()).collect();
        let restored = IncrementalEnsemble::from_sparse_with_grams(&sparse, grams).unwrap();
        assert_eq!(restored.nnz(), inc.nnz());
        for mode in 0..3 {
            assert_eq!(
                restored.gram(mode).unwrap().as_slice(),
                inc.gram(mode).unwrap().as_slice(),
                "mode {mode} gram must restore bitwise"
            );
        }
        // Continuing to absorb after a restore matches continuing the
        // original, bitwise: the occupancy maps were rebuilt correctly.
        let mut a = inc;
        let mut b = restored;
        for (idx, v) in [(vec![0, 2, 1], 2.5), (vec![2, 0, 1], -0.25)] {
            a.add(&idx, v).unwrap();
            b.add(&idx, v).unwrap();
        }
        for mode in 0..3 {
            assert_eq!(
                a.gram(mode).unwrap().as_slice(),
                b.gram(mode).unwrap().as_slice()
            );
        }
        // A duplicate of a restored cell is still rejected.
        assert!(matches!(
            b.add(&[0, 0, 0], 9.0),
            Err(TensorError::DuplicateEntry { .. })
        ));
        // Malformed restores are rejected with typed errors.
        let s = b.to_sparse();
        assert!(IncrementalEnsemble::from_sparse_with_grams(&s, vec![]).is_err());
        assert!(IncrementalEnsemble::from_sparse_with_grams(
            &s,
            vec![
                Matrix::zeros(2, 2),
                Matrix::zeros(3, 3),
                Matrix::zeros(2, 2)
            ]
        )
        .is_err());
    }

    #[test]
    fn empty_ensemble_accessors() {
        let inc = IncrementalEnsemble::new(&[3, 3]);
        assert_eq!(inc.nnz(), 0);
        assert_eq!(inc.density(), 0.0);
        assert_eq!(inc.gram(0).unwrap().frobenius_norm(), 0.0);
        assert!(inc.gram(2).is_err());
        assert_eq!(inc.to_sparse().nnz(), 0);
    }

    #[test]
    fn density_tracks_insertions() {
        let mut inc = IncrementalEnsemble::new(&[2, 2]);
        inc.add(&[0, 0], 1.0).unwrap();
        inc.add(&[1, 1], 1.0).unwrap();
        assert!((inc.density() - 0.5).abs() < 1e-15);
    }
}
