//! Serialization: save and load tensors and Tucker decompositions as JSON.
//!
//! A decomposed ensemble is the *product* of an expensive pipeline
//! (simulation budget + stitching + decomposition); persisting it lets an
//! analyst decompose once and explore (reconstruct cells, inspect factors)
//! in later sessions. All loads validate structural invariants and reject
//! corrupt files.

use crate::dense::DenseTensor;
use crate::error::TensorError;
use crate::sparse::SparseTensor;
use crate::tucker::TuckerDecomp;
use crate::Result;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Serialized form of a dense tensor.
#[derive(Serialize, Deserialize)]
struct DenseRaw {
    dims: Vec<usize>,
    data: Vec<f64>,
}

/// Serialized form of a sparse tensor.
#[derive(Serialize, Deserialize)]
struct SparseRaw {
    dims: Vec<usize>,
    indices: Vec<u64>,
    values: Vec<f64>,
}

/// Serialized form of a Tucker decomposition.
#[derive(Serialize, Deserialize)]
struct TuckerRaw {
    core: DenseRaw,
    factors: Vec<m2td_linalg::Matrix>,
}

impl Serialize for DenseTensor {
    fn serialize<S: serde::Serializer>(
        &self,
        serializer: S,
    ) -> std::result::Result<S::Ok, S::Error> {
        DenseRaw {
            dims: self.dims().to_vec(),
            data: self.as_slice().to_vec(),
        }
        .serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for DenseTensor {
    fn deserialize<D: serde::Deserializer<'de>>(
        deserializer: D,
    ) -> std::result::Result<Self, D::Error> {
        let raw = DenseRaw::deserialize(deserializer)?;
        DenseTensor::from_vec(&raw.dims, raw.data)
            .map_err(|e| serde::de::Error::custom(format!("invalid dense tensor: {e}")))
    }
}

impl Serialize for SparseTensor {
    fn serialize<S: serde::Serializer>(
        &self,
        serializer: S,
    ) -> std::result::Result<S::Ok, S::Error> {
        let (indices, values): (Vec<u64>, Vec<f64>) = self.iter_linear().unzip();
        SparseRaw {
            dims: self.dims().to_vec(),
            indices,
            values,
        }
        .serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for SparseTensor {
    fn deserialize<D: serde::Deserializer<'de>>(
        deserializer: D,
    ) -> std::result::Result<Self, D::Error> {
        let raw = SparseRaw::deserialize(deserializer)?;
        SparseTensor::from_sorted_linear(&raw.dims, raw.indices, raw.values)
            .map_err(|e| serde::de::Error::custom(format!("invalid sparse tensor: {e}")))
    }
}

impl Serialize for TuckerDecomp {
    fn serialize<S: serde::Serializer>(
        &self,
        serializer: S,
    ) -> std::result::Result<S::Ok, S::Error> {
        TuckerRaw {
            core: DenseRaw {
                dims: self.core.dims().to_vec(),
                data: self.core.as_slice().to_vec(),
            },
            factors: self.factors.clone(),
        }
        .serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for TuckerDecomp {
    fn deserialize<D: serde::Deserializer<'de>>(
        deserializer: D,
    ) -> std::result::Result<Self, D::Error> {
        let raw = TuckerRaw::deserialize(deserializer)?;
        let core = DenseTensor::from_vec(&raw.core.dims, raw.core.data)
            .map_err(|e| serde::de::Error::custom(format!("invalid core: {e}")))?;
        TuckerDecomp::new(core, raw.factors)
            .map_err(|e| serde::de::Error::custom(format!("invalid decomposition: {e}")))
    }
}

/// Writes any serializable artifact as pretty JSON.
pub fn save_json<T: Serialize>(value: &T, path: &Path) -> Result<()> {
    let json = serde_json::to_string_pretty(value).map_err(|e| TensorError::Serialization {
        message: format!("serialize: {e}"),
    })?;
    std::fs::write(path, json).map_err(|e| TensorError::Serialization {
        message: format!("write {}: {e}", path.display()),
    })?;
    Ok(())
}

/// Loads a JSON artifact written by [`save_json`].
pub fn load_json<T: for<'de> Deserialize<'de>>(path: &Path) -> Result<T> {
    let text = std::fs::read_to_string(path).map_err(|e| TensorError::Serialization {
        message: format!("read {}: {e}", path.display()),
    })?;
    serde_json::from_str(&text).map_err(|e| TensorError::Serialization {
        message: format!("deserialize: {e}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hosvd::hosvd_dense;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("m2td_io_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn dense_round_trip() {
        let t = DenseTensor::from_fn(&[3, 4], |i| (i[0] * 4 + i[1]) as f64);
        let path = tmp("dense.json");
        save_json(&t, &path).unwrap();
        let back: DenseTensor = load_json(&path).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn sparse_round_trip() {
        let t =
            SparseTensor::from_entries(&[4, 4, 4], &[(vec![0, 1, 2], 1.5), (vec![3, 3, 3], -2.0)])
                .unwrap();
        let path = tmp("sparse.json");
        save_json(&t, &path).unwrap();
        let back: SparseTensor = load_json(&path).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn tucker_round_trip_preserves_reconstruction() {
        let x = DenseTensor::from_fn(&[4, 3, 3], |i| {
            ((i[0] + 1) * (i[1] + 2)) as f64 + (i[2] as f64).sin()
        });
        let tucker = hosvd_dense(&x, &[2, 2, 2]).unwrap();
        let path = tmp("tucker.json");
        save_json(&tucker, &path).unwrap();
        let back: TuckerDecomp = load_json(&path).unwrap();
        let a = tucker.reconstruct().unwrap();
        let b = back.reconstruct().unwrap();
        assert!(a.sub(&b).unwrap().frobenius_norm() < 1e-12);
    }

    #[test]
    fn corrupt_files_are_rejected() {
        let path = tmp("corrupt.json");
        std::fs::write(&path, r#"{"dims":[2,2],"data":[1.0]}"#).unwrap();
        assert!(load_json::<DenseTensor>(&path).is_err());
        std::fs::write(&path, r#"{"dims":[2,2],"indices":[5],"values":[1.0]}"#).unwrap();
        assert!(load_json::<SparseTensor>(&path).is_err());
        std::fs::write(&path, "not json").unwrap();
        assert!(load_json::<DenseTensor>(&path).is_err());
    }

    #[test]
    fn missing_file_errors() {
        assert!(load_json::<DenseTensor>(Path::new("/nonexistent/x.json")).is_err());
    }
}
