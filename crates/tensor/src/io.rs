//! Serialization: save and load tensors and Tucker decompositions as JSON.
//!
//! A decomposed ensemble is the *product* of an expensive pipeline
//! (simulation budget + stitching + decomposition); persisting it lets an
//! analyst decompose once and explore (reconstruct cells, inspect factors)
//! in later sessions. All loads validate structural invariants and reject
//! corrupt files.

use crate::dense::DenseTensor;
use crate::error::TensorError;
use crate::sparse::SparseTensor;
use crate::tucker::TuckerDecomp;
use crate::Result;
use m2td_json::{FromJson, Json, JsonError, ToJson};
use std::path::Path;

/// Serialized form: `{ dims, data }`, validated on load.
impl ToJson for DenseTensor {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("dims".to_string(), self.dims().to_vec().to_json()),
            ("data".to_string(), self.as_slice().to_vec().to_json()),
        ])
    }
}

impl FromJson for DenseTensor {
    fn from_json(json: &Json) -> std::result::Result<Self, JsonError> {
        let dims: Vec<usize> = FromJson::from_json(json.require("dims")?)?;
        let data: Vec<f64> = FromJson::from_json(json.require("data")?)?;
        DenseTensor::from_vec(&dims, data)
            .map_err(|e| JsonError::Invalid(format!("invalid dense tensor: {e}")))
    }
}

/// Serialized form: `{ dims, indices, values }` with sorted linear
/// indices, validated on load.
impl ToJson for SparseTensor {
    fn to_json(&self) -> Json {
        let (indices, values): (Vec<u64>, Vec<f64>) = self.iter_linear().unzip();
        Json::Obj(vec![
            ("dims".to_string(), self.dims().to_vec().to_json()),
            ("indices".to_string(), indices.to_json()),
            ("values".to_string(), values.to_json()),
        ])
    }
}

impl FromJson for SparseTensor {
    fn from_json(json: &Json) -> std::result::Result<Self, JsonError> {
        let dims: Vec<usize> = FromJson::from_json(json.require("dims")?)?;
        let indices: Vec<u64> = FromJson::from_json(json.require("indices")?)?;
        let values: Vec<f64> = FromJson::from_json(json.require("values")?)?;
        SparseTensor::from_sorted_linear(&dims, indices, values)
            .map_err(|e| JsonError::Invalid(format!("invalid sparse tensor: {e}")))
    }
}

/// Serialized form: `{ core, factors }`, validated on load.
impl ToJson for TuckerDecomp {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("core".to_string(), self.core.to_json()),
            ("factors".to_string(), self.factors.to_json()),
        ])
    }
}

impl FromJson for TuckerDecomp {
    fn from_json(json: &Json) -> std::result::Result<Self, JsonError> {
        let core = DenseTensor::from_json(json.require("core")?)?;
        let factors: Vec<m2td_linalg::Matrix> = FromJson::from_json(json.require("factors")?)?;
        TuckerDecomp::new(core, factors)
            .map_err(|e| JsonError::Invalid(format!("invalid decomposition: {e}")))
    }
}

/// Writes any serializable artifact as pretty JSON.
pub fn save_json<T: ToJson>(value: &T, path: &Path) -> Result<()> {
    let json = value.to_json().to_pretty();
    std::fs::write(path, json).map_err(|e| TensorError::Serialization {
        message: format!("write {}: {e}", path.display()),
    })?;
    Ok(())
}

/// Loads a JSON artifact written by [`save_json`].
pub fn load_json<T: FromJson>(path: &Path) -> Result<T> {
    let text = std::fs::read_to_string(path).map_err(|e| TensorError::Serialization {
        message: format!("read {}: {e}", path.display()),
    })?;
    let json = Json::parse(&text).map_err(|e| TensorError::Serialization {
        message: format!("deserialize: {e}"),
    })?;
    T::from_json(&json).map_err(|e| TensorError::Serialization {
        message: format!("deserialize: {e}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hosvd::hosvd_dense;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("m2td_io_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn dense_round_trip() {
        let t = DenseTensor::from_fn(&[3, 4], |i| (i[0] * 4 + i[1]) as f64);
        let path = tmp("dense.json");
        save_json(&t, &path).unwrap();
        let back: DenseTensor = load_json(&path).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn sparse_round_trip() {
        let t =
            SparseTensor::from_entries(&[4, 4, 4], &[(vec![0, 1, 2], 1.5), (vec![3, 3, 3], -2.0)])
                .unwrap();
        let path = tmp("sparse.json");
        save_json(&t, &path).unwrap();
        let back: SparseTensor = load_json(&path).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn tucker_round_trip_preserves_reconstruction() {
        let x = DenseTensor::from_fn(&[4, 3, 3], |i| {
            ((i[0] + 1) * (i[1] + 2)) as f64 + (i[2] as f64).sin()
        });
        let tucker = hosvd_dense(&x, &[2, 2, 2]).unwrap();
        let path = tmp("tucker.json");
        save_json(&tucker, &path).unwrap();
        let back: TuckerDecomp = load_json(&path).unwrap();
        let a = tucker.reconstruct().unwrap();
        let b = back.reconstruct().unwrap();
        assert!(a.sub(&b).unwrap().frobenius_norm() < 1e-12);
    }

    #[test]
    fn corrupt_files_are_rejected() {
        let path = tmp("corrupt.json");
        std::fs::write(&path, r#"{"dims":[2,2],"data":[1.0]}"#).unwrap();
        assert!(load_json::<DenseTensor>(&path).is_err());
        std::fs::write(&path, r#"{"dims":[2,2],"indices":[5],"values":[1.0]}"#).unwrap();
        assert!(load_json::<SparseTensor>(&path).is_err());
        std::fs::write(&path, "not json").unwrap();
        assert!(load_json::<DenseTensor>(&path).is_err());
    }

    #[test]
    fn missing_file_errors() {
        assert!(load_json::<DenseTensor>(Path::new("/nonexistent/x.json")).is_err());
    }
}
