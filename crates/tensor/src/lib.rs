//! Tensor substrate for the M2TD reproduction.
//!
//! Provides the data structures and decomposition kernels the paper builds
//! on: dense and sparse (COO) tensors, mode-`n` matricization (unfolding),
//! tensor-times-matrix (TTM) products, Tucker decompositions via HOSVD
//! (Algorithm 1 of the paper) with an optional HOOI refinement, and a CP-ALS
//! baseline.
//!
//! # Conventions
//!
//! Mode-`n` unfolding follows Kolda & Bader: tensor element
//! `(i₁, …, i_N)` maps to matrix entry `(i_n, j)` with
//! `j = Σ_{k≠n} i_k · J_k`, `J_k = Π_{m<k, m≠n} I_m`.
//!
//! # Example
//!
//! ```
//! use m2td_tensor::{DenseTensor, hosvd_dense};
//!
//! // A 4x5x6 separable (rank-1) tensor decomposes exactly at rank 1.
//! let t = DenseTensor::from_fn(&[4, 5, 6], |idx| {
//!     (idx[0] + 1) as f64 * (idx[1] + 1) as f64 * (idx[2] + 1) as f64
//! });
//! let tucker = hosvd_dense(&t, &[1, 1, 1]).unwrap();
//! assert!(tucker.relative_error(&t).unwrap() < 1e-12);
//! ```

mod cp;
mod dense;
mod error;
mod hooi;
mod hosvd;
mod incremental;
mod io;
mod plan;
mod shape;
pub mod sketch;
mod sparse;
mod ttm;
mod ttv;
mod tucker;
mod workspace;

pub use cp::{cp_als, CpDecomp, CpOptions};
pub use dense::DenseTensor;
pub use error::TensorError;
pub use hooi::{hooi_dense, hooi_sparse, hooi_sparse_exact, HooiOptions};
pub use hosvd::{
    dense_core, dense_core_with, hosvd_dense, hosvd_sparse, hosvd_sparse_exact, sparse_core,
    sparse_core_with, suggest_ranks, CoreOrdering,
};
pub use incremental::IncrementalEnsemble;
pub use io::{load_json, save_json};
pub use plan::TtmPlan;
pub use shape::Shape;
pub use sketch::{hooi_sparse_sketched, hosvd_sparse_sketched, mach_sample, phase_gram};
pub use sparse::SparseTensor;
pub use ttm::{
    ttm_dense, ttm_dense_transposed, ttm_dense_transposed_ws, ttm_dense_ws, ttm_sparse,
    ttm_sparse_transposed,
};
pub use ttv::{ttv_dense, ttv_sparse};
pub use tucker::{CellEvaluator, TuckerDecomp};
pub use workspace::Workspace;

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, TensorError>;

/// Process-global sketch/guard state makes concurrently-running tests
/// race on install/uninstall; tests that flip it serialize here.
#[cfg(test)]
pub(crate) mod test_support {
    use std::sync::{Mutex, MutexGuard};

    static SKETCH_LOCK: Mutex<()> = Mutex::new(());

    pub(crate) fn sketch_lock() -> MutexGuard<'static, ()> {
        SKETCH_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }
}
