//! TTM-chain planner for core recovery.
//!
//! Recovering a Tucker core, `G = X ×₁ U⁽¹⁾ᵀ ⋯ ×_N U⁽ᴺ⁾ᵀ` (Algorithms 1,
//! 2 and 4 of the paper), is a chain of mode products whose cost depends
//! heavily on *execution order* and *representation*:
//!
//! * **Order** — contracting mode `n` multiplies the intermediate's size
//!   by `R_n / I_n`, so contracting the best-compressing modes first keeps
//!   every later step small. [`TtmPlan`] orders the chain by decreasing
//!   compression ratio `I_n / R_n`, compared exactly by integer
//!   cross-multiplication with ties broken by mode index, so the order is
//!   pinned deterministic across platforms.
//! * **Representation** — a sparse ensemble stays far from dense for the
//!   first steps of the chain. The executor keeps a *semi-sparse*
//!   intermediate ([`SemiSparse`]): sparse coordinates over the
//!   not-yet-contracted modes, a dense fiber block over the contracted
//!   ones (the SPLATT-style layout). Each step costs `O(stored · R_n)`
//!   instead of `O(dense · R_n)`. Once the predicted stored size crosses
//!   [`TtmPlan::densify_threshold`] × the dense size, the intermediate is
//!   materialized and the chain finishes on the dense workspace kernels.
//!
//! Determinism: every kernel in this module accumulates into each output
//! element in a fixed, thread-count-independent order — output groups are
//! partitioned into contiguous disjoint ranges, and within a group the
//! members are replayed in a stable-sorted order — so plan execution is
//! bitwise identical at every thread count.

use crate::dense::DenseTensor;
use crate::error::TensorError;
use crate::hosvd::CoreOrdering;
use crate::shape::Shape;
use crate::sparse::SparseTensor;
use crate::ttm::ttm_dense_transposed_ws;
use crate::workspace::Workspace;
use crate::Result;
use m2td_linalg::Matrix;

/// Default fraction of the dense intermediate size at which the
/// semi-sparse representation is abandoned: beyond ~a quarter density the
/// dense kernels' constants beat the per-key bookkeeping.
const DEFAULT_DENSIFY_THRESHOLD: f64 = 0.25;

/// Minimum multiply-add count before a semi-sparse step fans out over the
/// thread pool (mirrors the scatter kernel's gate).
const SEMI_PAR_MIN_WORK: usize = 1 << 12;

/// Mode order for a core-recovery TTM chain.
///
/// For [`CoreOrdering::BestShrinkFirst`] modes are sorted by decreasing
/// `I_n / R_n`, the comparison done exactly on `I_a·R_b` vs `I_b·R_a`
/// (no floating point), with ties broken by ascending mode index — the
/// order is fully pinned.
pub(crate) fn plan_mode_order(
    dims: &[usize],
    ranks: &[usize],
    ordering: CoreOrdering,
) -> Vec<usize> {
    let mut order: Vec<usize> = (0..dims.len()).collect();
    if ordering == CoreOrdering::BestShrinkFirst {
        order.sort_by(|&a, &b| {
            let lhs = dims[a] as u128 * ranks[b] as u128;
            let rhs = dims[b] as u128 * ranks[a] as u128;
            rhs.cmp(&lhs).then(a.cmp(&b))
        });
    }
    order
}

/// An execution plan for the core-recovery chain
/// `G = X ×₁ U⁽¹⁾ᵀ ⋯ ×_N U⁽ᴺ⁾ᵀ` over a tensor of shape `dims` with
/// factors `U⁽ⁿ⁾ : I_n × R_n`.
///
/// Build once per shape, execute per tensor — the plan is immutable and
/// `Sync`, so distributed reducers can share one plan across chunks.
#[derive(Debug, Clone)]
pub struct TtmPlan {
    dims: Vec<usize>,
    ranks: Vec<usize>,
    order: Vec<usize>,
    densify_threshold: f64,
}

impl TtmPlan {
    /// Plans the chain with the default best-shrink-first ordering.
    pub fn new(dims: &[usize], ranks: &[usize]) -> Result<Self> {
        Self::with_ordering(dims, ranks, CoreOrdering::BestShrinkFirst)
    }

    /// Plans the chain under an explicit [`CoreOrdering`].
    pub fn with_ordering(dims: &[usize], ranks: &[usize], ordering: CoreOrdering) -> Result<Self> {
        if ranks.len() != dims.len() {
            return Err(TensorError::WrongNumberOfRanks {
                supplied: ranks.len(),
                order: dims.len(),
            });
        }
        Ok(Self {
            dims: dims.to_vec(),
            ranks: ranks.to_vec(),
            order: plan_mode_order(dims, ranks, ordering),
            densify_threshold: DEFAULT_DENSIFY_THRESHOLD,
        })
    }

    /// Overrides the densify threshold (clamped to `>= 0`; `0` densifies
    /// right after the first chain step).
    pub fn with_densify_threshold(mut self, threshold: f64) -> Self {
        self.densify_threshold = threshold.max(0.0);
        self
    }

    /// The contraction order the planner chose.
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// The stored-density fraction at which the executor switches from the
    /// semi-sparse representation to dense kernels.
    pub fn densify_threshold(&self) -> f64 {
        self.densify_threshold
    }

    /// Predicted floating-point multiply-add count of the chain under the
    /// dense cost model: contracting mode `n` over an intermediate of
    /// element count `E` costs `E · R_n` multiply-adds. This is the
    /// op-count the `ttm.plan_madds` gauge reports and the quantity the
    /// planner ordering minimizes greedily.
    pub fn predicted_madds(&self) -> u64 {
        let mut cur: Vec<u64> = self.dims.iter().map(|&d| d as u64).collect();
        let mut total = 0u64;
        for &n in &self.order {
            let elems: u64 = cur.iter().product();
            total += elems * self.ranks[n] as u64;
            cur[n] = self.ranks[n] as u64;
        }
        total
    }

    fn validate(&self, dims: &[usize], factors: &[Matrix]) -> Result<()> {
        if dims != self.dims.as_slice() {
            return Err(TensorError::ShapeMismatch {
                expected: self.dims.clone(),
                actual: dims.to_vec(),
                op: "ttm_plan",
            });
        }
        if factors.len() != self.dims.len() {
            return Err(TensorError::WrongNumberOfRanks {
                supplied: factors.len(),
                order: self.dims.len(),
            });
        }
        for (n, f) in factors.iter().enumerate() {
            if f.rows() != self.dims[n] || f.cols() != self.ranks[n] {
                return Err(TensorError::ShapeMismatch {
                    expected: vec![self.dims[n], self.ranks[n]],
                    actual: vec![f.rows(), f.cols()],
                    op: "ttm_plan",
                });
            }
        }
        Ok(())
    }

    /// Executes the chain on a sparse tensor: semi-sparse until the
    /// densify threshold trips, dense workspace kernels after.
    ///
    /// Bitwise identical at every thread count; see the module docs for
    /// the determinism argument.
    pub fn execute_sparse(
        &self,
        x: &SparseTensor,
        factors: &[Matrix],
        ws: &mut Workspace,
    ) -> Result<DenseTensor> {
        self.validate(x.dims(), factors)?;
        let _span = m2td_obs::span!("ttm.plan");
        m2td_obs::gauge_set("ttm.plan_madds", self.predicted_madds() as f64);
        if self.order.is_empty() || x.nnz() == 0 {
            return Ok(DenseTensor::zeros(&self.ranks));
        }

        let first = self.order[0];
        let semi = SemiSparse::first_step(x, first, &factors[first], ws);
        let mut max_stored = (x.nnz() as u64).max(semi.stored_elems() as u64);

        enum Inter {
            Semi(SemiSparse),
            Dense(DenseTensor),
        }
        let mut cur = Inter::Semi(semi);
        for &mode in &self.order[1..] {
            cur = match cur {
                Inter::Dense(t) => {
                    let next = ttm_dense_transposed_ws(&t, mode, &factors[mode], ws)?;
                    ws.recycle_tensor(t);
                    Inter::Dense(next)
                }
                Inter::Semi(mut s) => {
                    let r = self.ranks[mode];
                    // Upper bound on the stored size after this step: key
                    // count can only shrink when groups merge.
                    let predicted = (s.keys.len() * s.block_len * r) as f64;
                    let dense_after: f64 = s
                        .dims
                        .iter()
                        .enumerate()
                        .map(|(m, &d)| if m == mode { r } else { d } as f64)
                        .product();
                    if predicted >= self.densify_threshold * dense_after {
                        m2td_obs::counter_add("ttm.densify_mode", 1);
                        let t = s.materialize(ws);
                        let next = ttm_dense_transposed_ws(&t, mode, &factors[mode], ws)?;
                        ws.recycle_tensor(t);
                        Inter::Dense(next)
                    } else {
                        s.contract(mode, &factors[mode], ws);
                        Inter::Semi(s)
                    }
                }
            };
            max_stored = max_stored.max(match &cur {
                Inter::Semi(s) => s.stored_elems() as u64,
                Inter::Dense(t) => t.num_elements() as u64,
            });
        }
        m2td_obs::gauge_set("ttm.intermediate_elems", max_stored as f64);
        match cur {
            Inter::Dense(t) => Ok(t),
            Inter::Semi(s) => Ok(s.materialize(ws)),
        }
    }

    /// Executes the chain on a dense tensor with the workspace kernels.
    pub fn execute_dense(
        &self,
        x: &DenseTensor,
        factors: &[Matrix],
        ws: &mut Workspace,
    ) -> Result<DenseTensor> {
        self.validate(x.dims(), factors)?;
        let _span = m2td_obs::span!("ttm.plan");
        m2td_obs::gauge_set("ttm.plan_madds", self.predicted_madds() as f64);
        let mut acc: Option<DenseTensor> = None;
        let mut max_stored = x.num_elements() as u64;
        for &mode in &self.order {
            let next = match &acc {
                None => ttm_dense_transposed_ws(x, mode, &factors[mode], ws)?,
                Some(t) => ttm_dense_transposed_ws(t, mode, &factors[mode], ws)?,
            };
            if let Some(t) = acc.take() {
                ws.recycle_tensor(t);
            }
            max_stored = max_stored.max(next.num_elements() as u64);
            acc = Some(next);
        }
        m2td_obs::gauge_set("ttm.intermediate_elems", max_stored as f64);
        Ok(acc.expect("order is non-empty for non-empty tensors"))
    }
}

/// Semi-sparse intermediate of a TTM chain: sparse coordinates over the
/// not-yet-contracted modes, one dense block per stored coordinate over
/// the already-contracted modes.
///
/// Invariants: `keys` are strictly increasing linear indices over the
/// subshape formed by `sparse_modes` (ascending mode order); `blocks` is
/// `keys.len() × block_len`, each block row-major over `dense_modes`
/// (ascending) with the contracted modes' rank extents.
struct SemiSparse {
    /// Current intermediate dims (contracted modes at rank extent).
    dims: Vec<usize>,
    /// Modes still sparse, ascending.
    sparse_modes: Vec<usize>,
    /// Modes already contracted, ascending — the dense block axes.
    dense_modes: Vec<usize>,
    /// Linear keys over the sparse-mode subshape, strictly increasing.
    keys: Vec<usize>,
    /// `keys.len() × block_len` dense fiber blocks.
    blocks: Vec<f64>,
    block_len: usize,
}

impl SemiSparse {
    /// Number of stored scalars (the quantity the densify threshold and
    /// the `ttm.intermediate_elems` gauge track).
    fn stored_elems(&self) -> usize {
        self.keys.len() * self.block_len
    }

    /// First chain step `X ×_n Uᵀ` straight off the tensor's mode-sorted
    /// scatter index: each index group is one surviving coordinate, its
    /// dense fiber `block[j] = Σ U[i_n, j]·v` accumulated over the group's
    /// entries in stream order.
    fn first_step(x: &SparseTensor, mode: usize, u: &Matrix, ws: &mut Workspace) -> Self {
        let idx = x.scatter_index(mode);
        let r = u.cols();
        let groups = idx.num_groups();
        let stride = idx.stride();

        let mut keys = Vec::with_capacity(groups);
        for g in 0..groups {
            let (high, low) = idx.group_key(g);
            // Linear index over the input shape with `mode` removed.
            keys.push(high * stride + low);
        }

        let mut blocks = ws.take(groups * r);
        let parts = if x.nnz() * r < SEMI_PAR_MIN_WORK {
            1
        } else {
            m2td_par::max_threads().clamp(1, groups.max(1))
        };
        {
            let sink = m2td_par::UnsafeSlice::new(blocks.as_mut_slice());
            m2td_par::par_for_each_index(parts, |part| {
                let g0 = part * groups / parts;
                let g1 = (part + 1) * groups / parts;
                for g in g0..g1 {
                    for &(i_n, v) in idx.group_entries(g) {
                        for j in 0..r {
                            // SAFETY: block row `g` belongs to exactly one
                            // contiguous part, so writers are disjoint.
                            unsafe { sink.add_assign(g * r + j, u.get(i_n as usize, j) * v) };
                        }
                    }
                }
            });
        }

        let mut dims = x.dims().to_vec();
        dims[mode] = r;
        Self {
            sparse_modes: (0..dims.len()).filter(|&m| m != mode).collect(),
            dense_modes: vec![mode],
            dims,
            keys,
            blocks,
            block_len: r,
        }
    }

    /// Contracts sparse mode `n` with `U : I_n × R`, staying semi-sparse:
    /// keys sharing every other sparse coordinate merge, and the dense
    /// block grows by an `R`-extent axis at `n`'s position.
    fn contract(&mut self, n: usize, u: &Matrix, ws: &mut Workspace) {
        let pos = self
            .sparse_modes
            .iter()
            .position(|&m| m == n)
            .expect("contract target must still be sparse");
        let sdims: Vec<usize> = self.sparse_modes.iter().map(|&m| self.dims[m]).collect();
        let stride_n: usize = sdims[pos + 1..].iter().product();
        let above = stride_n * sdims[pos];
        let r = u.cols();

        // Tag every key with its merged key and mode-n coordinate. Keys
        // are ascending, and the sort is stable, so within each output
        // group members stay in ascending-old-key (= ascending i_n) order
        // — the accumulation order is pinned.
        let mut tagged: Vec<(usize, u32, u32)> = Vec::with_capacity(self.keys.len());
        for (row, &k) in self.keys.iter().enumerate() {
            let high = k / above;
            let rest = k % above;
            tagged.push((
                high * stride_n + rest % stride_n,
                (rest / stride_n) as u32,
                row as u32,
            ));
        }
        tagged.sort_by_key(|&(nk, _, _)| nk);
        let mut new_keys: Vec<usize> = Vec::new();
        let mut starts = vec![0usize];
        for (i, &(nk, _, _)) in tagged.iter().enumerate() {
            if new_keys.last() != Some(&nk) {
                if i > 0 {
                    starts.push(i);
                }
                new_keys.push(nk);
            }
        }
        starts.push(tagged.len());
        let groups = new_keys.len();

        // Block layout: insert the new rank axis at `n`'s sorted position.
        let p = self.dense_modes.iter().filter(|&&m| m < n).count();
        let post_len: usize = self.dense_modes[p..]
            .iter()
            .map(|&m| self.dims[m])
            .product();
        let pre_len = self.block_len.checked_div(post_len).unwrap_or(0);
        let new_block_len = self.block_len * r;

        let mut new_blocks = ws.take(groups * new_block_len);
        let work = tagged.len() * self.block_len * r;
        let parts = if work < SEMI_PAR_MIN_WORK {
            1
        } else {
            m2td_par::max_threads().clamp(1, groups.max(1))
        };
        {
            let old_blocks = &self.blocks;
            let old_len = self.block_len;
            let sink = m2td_par::UnsafeSlice::new(new_blocks.as_mut_slice());
            m2td_par::par_for_each_index(parts, |part| {
                let g0 = part * groups / parts;
                let g1 = (part + 1) * groups / parts;
                for g in g0..g1 {
                    let out_base = g * new_block_len;
                    for &(_, i_n, row) in &tagged[starts[g]..starts[g + 1]] {
                        let block = &old_blocks[row as usize * old_len..][..old_len];
                        for j in 0..r {
                            let c = u.get(i_n as usize, j);
                            for pre in 0..pre_len {
                                let out_off = out_base + pre * (r * post_len) + j * post_len;
                                let in_off = pre * post_len;
                                for post in 0..post_len {
                                    // SAFETY: output group `g` belongs to
                                    // exactly one contiguous part, so
                                    // writers are disjoint.
                                    unsafe {
                                        sink.add_assign(out_off + post, c * block[in_off + post])
                                    };
                                }
                            }
                        }
                    }
                }
            });
        }

        ws.recycle(std::mem::replace(&mut self.blocks, new_blocks));
        self.block_len = new_block_len;
        self.keys = new_keys;
        self.dims[n] = r;
        self.sparse_modes.remove(pos);
        self.dense_modes.insert(p, n);
    }

    /// Materializes the intermediate densely (absent coordinates are
    /// zero). Pure writes — keys are distinct and blocks disjoint.
    fn materialize(self, ws: &mut Workspace) -> DenseTensor {
        let shape = Shape::new(&self.dims);
        let total = shape.num_elements();
        let mut out = DenseTensor::from_vec(&self.dims, ws.take(total))
            .expect("take(total) returns a buffer of exactly that length");
        // Row-major strides of the full intermediate shape.
        let order = self.dims.len();
        let mut strides = vec![1usize; order];
        for m in (0..order.saturating_sub(1)).rev() {
            strides[m] = strides[m + 1] * self.dims[m + 1];
        }
        // Offset of each block position within the full tensor.
        let mut block_offsets = vec![0usize; self.block_len];
        for (b, slot) in block_offsets.iter_mut().enumerate() {
            let mut rem = b;
            let mut off = 0;
            for &m in self.dense_modes.iter().rev() {
                let d = self.dims[m];
                off += (rem % d) * strides[m];
                rem /= d;
            }
            *slot = off;
        }
        let data = out.as_mut_slice();
        for (row, &k) in self.keys.iter().enumerate() {
            let mut rem = k;
            let mut key_off = 0;
            for &m in self.sparse_modes.iter().rev() {
                let d = self.dims[m];
                key_off += (rem % d) * strides[m];
                rem /= d;
            }
            let block = &self.blocks[row * self.block_len..][..self.block_len];
            for (b, &v) in block.iter().enumerate() {
                data[key_off + block_offsets[b]] = v;
            }
        }
        ws.recycle(self.blocks);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ttm::ttm_dense_transposed;

    fn factors_for(dims: &[usize], ranks: &[usize]) -> Vec<Matrix> {
        dims.iter()
            .zip(ranks.iter())
            .enumerate()
            .map(|(n, (&d, &r))| {
                Matrix::from_fn(d, r, |i, j| ((i * (n + 3) + 2 * j + 1) as f64 * 0.17).sin())
            })
            .collect()
    }

    /// Fixed natural-order dense chain — the naive reference.
    fn naive_dense_chain(x: &DenseTensor, factors: &[Matrix]) -> DenseTensor {
        let mut acc = x.clone();
        for (mode, f) in factors.iter().enumerate() {
            acc = ttm_dense_transposed(&acc, mode, f).unwrap();
        }
        acc
    }

    #[test]
    fn planner_order_is_decreasing_ratio_with_index_ties() {
        let p = TtmPlan::new(&[100, 10, 50], &[2, 5, 2]).unwrap();
        assert_eq!(p.order(), &[0, 2, 1]);
        // Modes 0 and 2 have the identical ratio 3: the tie must break by
        // mode index, not float comparison luck.
        let t = TtmPlan::new(&[6, 8, 9], &[2, 2, 3]).unwrap();
        assert_eq!(t.order(), &[1, 0, 2]);
        let natural =
            TtmPlan::with_ordering(&[6, 8, 9], &[2, 2, 3], CoreOrdering::Natural).unwrap();
        assert_eq!(natural.order(), &[0, 1, 2]);
    }

    #[test]
    fn predicted_madds_planner_never_exceeds_natural() {
        for (dims, ranks) in [
            (vec![12usize, 12, 12, 12], vec![4usize, 4, 4, 4]),
            (vec![32, 16, 8], vec![4, 2, 2]),
            (vec![5, 40, 7], vec![5, 2, 6]),
        ] {
            let planned = TtmPlan::new(&dims, &ranks).unwrap();
            let natural = TtmPlan::with_ordering(&dims, &ranks, CoreOrdering::Natural).unwrap();
            assert!(
                planned.predicted_madds() <= natural.predicted_madds(),
                "planner {} > natural {} for {dims:?}/{ranks:?}",
                planned.predicted_madds(),
                natural.predicted_madds()
            );
        }
    }

    #[test]
    fn sparse_execution_matches_naive_dense_chain() {
        // ~2/3 fill: stays semi-sparse past the first step at the default
        // threshold of the small shape? Either way the result must match.
        let dims = [6usize, 5, 4];
        let ranks = [2usize, 3, 2];
        let dense = DenseTensor::from_fn(&dims, |i| {
            let l = i[0] * 20 + i[1] * 4 + i[2];
            if l % 3 == 0 {
                0.0
            } else {
                (l as f64 * 0.31).sin() + 0.2
            }
        });
        let sparse = SparseTensor::from_dense(&dense);
        let factors = factors_for(&dims, &ranks);
        let reference = naive_dense_chain(&dense, &factors);
        for ordering in [CoreOrdering::Natural, CoreOrdering::BestShrinkFirst] {
            let plan = TtmPlan::with_ordering(&dims, &ranks, ordering).unwrap();
            let mut ws = Workspace::new();
            let got = plan.execute_sparse(&sparse, &factors, &mut ws).unwrap();
            let diff = got.sub(&reference).unwrap().frobenius_norm();
            assert!(diff < 1e-10, "{ordering:?} diverged by {diff}");
        }
    }

    #[test]
    fn densify_threshold_extremes_agree() {
        let dims = [7usize, 6, 5];
        let ranks = [3usize, 2, 2];
        let dense = DenseTensor::from_fn(&dims, |i| {
            let l = i[0] * 30 + i[1] * 5 + i[2];
            if l % 5 != 1 {
                0.0
            } else {
                (l as f64 * 0.7).cos()
            }
        });
        let sparse = SparseTensor::from_dense(&dense);
        let factors = factors_for(&dims, &ranks);
        let mut ws = Workspace::new();
        // threshold 0: densify immediately after the first step.
        let eager = TtmPlan::new(&dims, &ranks)
            .unwrap()
            .with_densify_threshold(0.0)
            .execute_sparse(&sparse, &factors, &mut ws)
            .unwrap();
        // threshold 2: never densify mid-chain.
        let lazy = TtmPlan::new(&dims, &ranks)
            .unwrap()
            .with_densify_threshold(2.0)
            .execute_sparse(&sparse, &factors, &mut ws)
            .unwrap();
        let diff = eager.sub(&lazy).unwrap().frobenius_norm();
        assert!(diff < 1e-12, "densify paths diverged by {diff}");
    }

    #[test]
    fn dense_execution_matches_naive_chain() {
        let dims = [5usize, 4, 6];
        let ranks = [2usize, 2, 3];
        let dense = DenseTensor::from_fn(&dims, |i| ((i[0] * 24 + i[1] * 6 + i[2]) as f64).sin());
        let factors = factors_for(&dims, &ranks);
        let reference = naive_dense_chain(&dense, &factors);
        let plan = TtmPlan::new(&dims, &ranks).unwrap();
        let mut ws = Workspace::new();
        let got = plan.execute_dense(&dense, &factors, &mut ws).unwrap();
        let diff = got.sub(&reference).unwrap().frobenius_norm();
        assert!(diff < 1e-10, "dense plan execution diverged by {diff}");
        assert!(ws.reuse_hits() > 0, "chain never reused a buffer");
    }

    #[test]
    fn empty_tensor_yields_zero_core() {
        let plan = TtmPlan::new(&[4, 4], &[2, 2]).unwrap();
        let x = SparseTensor::empty(&[4, 4]);
        let factors = factors_for(&[4, 4], &[2, 2]);
        let mut ws = Workspace::new();
        let core = plan.execute_sparse(&x, &factors, &mut ws).unwrap();
        assert_eq!(core.dims(), &[2, 2]);
        assert_eq!(core.frobenius_norm(), 0.0);
    }

    #[test]
    fn mismatched_inputs_are_rejected() {
        let plan = TtmPlan::new(&[4, 4], &[2, 2]).unwrap();
        let factors = factors_for(&[4, 4], &[2, 2]);
        let mut ws = Workspace::new();
        let wrong_shape = SparseTensor::empty(&[4, 5]);
        assert!(plan
            .execute_sparse(&wrong_shape, &factors, &mut ws)
            .is_err());
        let x = SparseTensor::empty(&[4, 4]);
        assert!(plan.execute_sparse(&x, &factors[..1], &mut ws).is_err());
        let bad = factors_for(&[4, 4], &[3, 2]);
        assert!(plan.execute_sparse(&x, &bad, &mut ws).is_err());
        assert!(TtmPlan::new(&[4, 4], &[2]).is_err());
    }
}
