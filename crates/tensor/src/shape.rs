//! Multi-mode shape and index arithmetic.

use crate::error::TensorError;
use crate::Result;

/// The shape of an `N`-mode tensor plus precomputed row-major strides.
///
/// All index arithmetic in the crate goes through this type, so the
/// dense buffer layout, sparse linear indices and unfolding maps are
/// guaranteed to agree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Shape {
    dims: Vec<usize>,
    /// Row-major strides: `strides[n] = Π_{m>n} dims[m]`.
    strides: Vec<usize>,
}

impl Shape {
    /// Creates a shape from mode extents. Zero-extent modes are allowed but
    /// produce an empty tensor.
    pub fn new(dims: &[usize]) -> Self {
        let n = dims.len();
        let mut strides = vec![1usize; n];
        for i in (0..n.saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * dims[i + 1];
        }
        Self {
            dims: dims.to_vec(),
            strides,
        }
    }

    /// Number of modes (tensor order).
    #[inline]
    pub fn order(&self) -> usize {
        self.dims.len()
    }

    /// Mode extents.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Extent of one mode.
    #[inline]
    pub fn dim(&self, mode: usize) -> usize {
        self.dims[mode]
    }

    /// Total number of elements (`Π dims`), or `None` when the product
    /// overflows `usize`. Serve-scale shapes (e.g. `[1<<22; 3]`) exceed
    /// 2⁶⁴ cells; callers that need the exact count must handle that.
    pub fn checked_num_elements(&self) -> Option<usize> {
        if self.dims.is_empty() {
            return Some(0);
        }
        self.dims
            .iter()
            .try_fold(1usize, |acc, &d| acc.checked_mul(d))
    }

    /// Total number of elements (`Π dims`), saturating at `usize::MAX` on
    /// overflow. The unchecked `iter().product()` used to panic in debug
    /// and silently wrap in release, corrupting `density()` and the
    /// densify-threshold decisions in `TtmPlan`; saturation keeps those
    /// ratios directionally correct (a >2⁶⁴-cell tensor is treated as
    /// having vanishing density). Use [`Self::checked_num_elements`] when
    /// the exact count matters.
    pub fn num_elements(&self) -> usize {
        self.checked_num_elements().unwrap_or(usize::MAX)
    }

    /// Validates a mode id.
    pub fn check_mode(&self, mode: usize) -> Result<()> {
        if mode >= self.order() {
            return Err(TensorError::InvalidMode {
                mode,
                order: self.order(),
            });
        }
        Ok(())
    }

    /// Validates a multi-index against this shape.
    pub fn check_index(&self, index: &[usize]) -> Result<()> {
        if index.len() != self.order() || index.iter().zip(self.dims.iter()).any(|(&i, &d)| i >= d)
        {
            return Err(TensorError::IndexOutOfBounds {
                index: index.to_vec(),
                shape: self.dims.clone(),
            });
        }
        Ok(())
    }

    /// Row-major linear index of a multi-index (debug-asserted bounds).
    #[inline]
    pub fn linear_index(&self, index: &[usize]) -> usize {
        debug_assert_eq!(index.len(), self.order());
        let mut lin = 0;
        for ((i, s), d) in index.iter().zip(self.strides.iter()).zip(self.dims.iter()) {
            debug_assert!(i < d, "index component {i} out of bounds for dim {d}");
            lin += i * s;
        }
        lin
    }

    /// Inverse of [`Self::linear_index`]: writes the multi-index into `out`.
    #[inline]
    pub fn multi_index_into(&self, mut lin: usize, out: &mut [usize]) {
        debug_assert_eq!(out.len(), self.order());
        for (o, s) in out.iter_mut().zip(self.strides.iter()) {
            *o = lin / s;
            lin %= s;
        }
    }

    /// Inverse of [`Self::linear_index`], allocating.
    pub fn multi_index(&self, lin: usize) -> Vec<usize> {
        let mut out = vec![0; self.order()];
        self.multi_index_into(lin, &mut out);
        out
    }

    /// Number of columns of the mode-`n` unfolding
    /// (`Π_{m≠n} I_m`).
    pub fn unfold_cols(&self, mode: usize) -> usize {
        self.dims
            .iter()
            .enumerate()
            .filter(|&(m, _)| m != mode)
            .map(|(_, &d)| d)
            .product()
    }

    /// Column index of a tensor element in the mode-`n` unfolding
    /// (Kolda & Bader convention: `j = Σ_{k≠n} i_k J_k` with
    /// `J_k = Π_{m<k, m≠n} I_m`).
    pub fn unfold_col_index(&self, mode: usize, index: &[usize]) -> usize {
        let mut j = 0;
        let mut jk = 1;
        for (k, &ik) in index.iter().enumerate() {
            if k == mode {
                continue;
            }
            j += ik * jk;
            jk *= self.dims[k];
        }
        j
    }

    /// Returns a new shape with mode `mode` replaced by `new_dim`.
    pub fn with_mode_dim(&self, mode: usize, new_dim: usize) -> Shape {
        let mut dims = self.dims.clone();
        dims[mode] = new_dim;
        Shape::new(&dims)
    }

    /// Iterates over all multi-indices in row-major order.
    pub fn iter_indices(&self) -> IndexIter<'_> {
        IndexIter {
            shape: self,
            next_lin: 0,
            total: self.num_elements(),
        }
    }
}

/// Iterator over all multi-indices of a shape in row-major order.
pub struct IndexIter<'a> {
    shape: &'a Shape,
    next_lin: usize,
    total: usize,
}

impl Iterator for IndexIter<'_> {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.next_lin >= self.total {
            return None;
        }
        let idx = self.shape.multi_index(self.next_lin);
        self.next_lin += 1;
        Some(idx)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.total - self.next_lin;
        (rem, Some(rem))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.linear_index(&[0, 0, 1]), 1);
        assert_eq!(s.linear_index(&[0, 1, 0]), 4);
        assert_eq!(s.linear_index(&[1, 0, 0]), 12);
        assert_eq!(s.num_elements(), 24);
    }

    #[test]
    fn linear_and_multi_index_are_inverse() {
        let s = Shape::new(&[3, 4, 2, 5]);
        for lin in 0..s.num_elements() {
            let idx = s.multi_index(lin);
            assert_eq!(s.linear_index(&idx), lin);
        }
    }

    #[test]
    fn unfold_col_index_matches_kolda_example() {
        // For a 3x4x2 tensor, mode-0 unfolding has 8 columns; element
        // (i, j, k) lands in column j + 4k.
        let s = Shape::new(&[3, 4, 2]);
        assert_eq!(s.unfold_cols(0), 8);
        assert_eq!(s.unfold_col_index(0, &[1, 2, 0]), 2);
        assert_eq!(s.unfold_col_index(0, &[1, 2, 1]), 6);
        // Mode-1: element (i, j, k) lands in column i + 3k.
        assert_eq!(s.unfold_cols(1), 6);
        assert_eq!(s.unfold_col_index(1, &[2, 0, 1]), 5);
    }

    #[test]
    fn unfold_col_index_is_a_bijection() {
        let s = Shape::new(&[2, 3, 4]);
        for mode in 0..3 {
            let mut seen = vec![false; s.unfold_cols(mode)];
            for idx in s.iter_indices() {
                // Fix the mode index to 0 so each rest-index appears once.
                if idx[mode] != 0 {
                    continue;
                }
                let c = s.unfold_col_index(mode, &idx);
                assert!(!seen[c], "column {c} hit twice");
                seen[c] = true;
            }
            assert!(seen.iter().all(|&b| b));
        }
    }

    #[test]
    fn check_index_detects_out_of_bounds() {
        let s = Shape::new(&[2, 2]);
        assert!(s.check_index(&[1, 1]).is_ok());
        assert!(s.check_index(&[2, 0]).is_err());
        assert!(s.check_index(&[0]).is_err());
    }

    #[test]
    fn check_mode_bounds() {
        let s = Shape::new(&[2, 2]);
        assert!(s.check_mode(1).is_ok());
        assert!(s.check_mode(2).is_err());
    }

    #[test]
    fn with_mode_dim_replaces() {
        let s = Shape::new(&[2, 3, 4]).with_mode_dim(1, 7);
        assert_eq!(s.dims(), &[2, 7, 4]);
    }

    #[test]
    fn empty_and_degenerate_shapes() {
        assert_eq!(Shape::new(&[]).num_elements(), 0);
        assert_eq!(Shape::new(&[3, 0, 2]).num_elements(), 0);
        assert_eq!(Shape::new(&[5]).num_elements(), 5);
        assert_eq!(Shape::new(&[]).checked_num_elements(), Some(0));
        assert_eq!(Shape::new(&[3, 0, 2]).checked_num_elements(), Some(0));
    }

    #[test]
    fn num_elements_saturates_instead_of_wrapping() {
        // A serve-scale shape whose product (2^66) exceeds usize: the
        // unchecked product used to panic in debug / wrap in release.
        let huge = Shape::new(&[1 << 22, 1 << 22, 1 << 22]);
        assert_eq!(huge.checked_num_elements(), None);
        assert_eq!(huge.num_elements(), usize::MAX);
        // A wrap to a small number would make this fail loudly.
        assert!(huge.num_elements() > (1usize << 62));
        // Just-under-the-limit products still compute exactly.
        let fits = Shape::new(&[1 << 31, 1 << 31]);
        assert_eq!(fits.checked_num_elements(), Some(1usize << 62));
        assert_eq!(fits.num_elements(), 1usize << 62);
    }

    #[test]
    fn iter_indices_covers_all() {
        let s = Shape::new(&[2, 3]);
        let all: Vec<_> = s.iter_indices().collect();
        assert_eq!(all.len(), 6);
        assert_eq!(all[0], vec![0, 0]);
        assert_eq!(all[5], vec![1, 2]);
    }
}
