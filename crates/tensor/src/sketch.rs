//! Randomized sparse routes: sketched Grams, MACH entry sampling, and
//! sketched HOSVD/HOOI.
//!
//! The matrix-level kernels (Gaussian range-finders, counter-based
//! Gaussian sources, the install idiom) live in `m2td-sketch`; this
//! module lifts them to [`SparseTensor`]s:
//!
//! * [`sketched_unfold_gram`] — `G̃ = (X₍ₙ₎Ω)(X₍ₙ₎Ω)ᵀ / s`: the Gram is
//!   estimated from a thin `I_n × s` sketch instead of the full
//!   column-group accumulation, with a **measured** trace-concentration
//!   error (`tr G = ‖X‖²_F` exactly, for every mode);
//! * [`mach_sample`] — MACH-style (Tsourakakis) entry sampling with
//!   Horvitz–Thompson rescaling, uniform or magnitude-biased
//!   (goal-oriented weighting), plus a measured energy-estimate error;
//! * [`phase_gram`] — the Phase-1 dispatch point used by `m2td-core` and
//!   `m2td-dist`: exact while `m2td_sketch` is uninstalled, otherwise the
//!   cheapest route *predicted by the op-count model*, gated by
//!   [`m2td_guard::with_error_budget`] with exact fallback;
//! * [`hosvd_sparse_sketched`] / guarded HOSVD/HOOI wrappers used by
//!   [`crate::hosvd_sparse`] / [`crate::hooi_sparse`] when sketching is
//!   installed.
//!
//! ## Determinism
//!
//! Every random draw comes from a counter-based source keyed on
//! `(derived seed, column, lane)` or on the entry's linear index, and
//! every accumulation runs serially per mode in stored entry order —
//! so a fixed [`SketchConfig::seed`] produces bitwise-identical Grams,
//! samples, factors and cores at every thread count, matching the
//! `m2td-par` contract.
//!
//! ## Guard gating
//!
//! Sketched results are never accepted unmeasured. Each route computes a
//! cheap *measured* relative error (trace concentration, energy
//! estimate, or the free identity `‖X − X̃‖² = ‖X‖² − ‖G‖²` for
//! orthonormal factors) and feeds it through
//! [`m2td_guard::with_error_budget`]; a rejection falls back to the
//! exact route and bumps the `sketch.fallbacks` counter — never any
//! `guard.*` counter, because a rejected sketch corrupted nothing.

use crate::hooi::{hooi_sparse_exact, hooi_sparse_from, HooiOptions, HooiOutcome};
use crate::hosvd::{gram_factor, sparse_core, CoreOrdering};
use crate::sparse::SparseTensor;
use crate::tucker::TuckerDecomp;
use crate::Result;
use m2td_linalg::Matrix;
use m2td_sketch::{counter_gaussian, counter_uniform, SketchConfig, SketchPolicy};
use std::collections::BTreeMap;

/// Site tags mixed into [`SketchConfig::seed_for`] so Grams, samples and
/// range-finders draw independent streams from one configured seed.
const GRAM_SITE: u64 = 0x4752_414D; // "GRAM"
const MACH_SITE: u64 = 0x4D41_4348; // "MACH"

/// Outcome of a MACH entry-sampling pass.
#[derive(Debug, Clone)]
pub struct MachSample {
    /// The sampled, Horvitz–Thompson-rescaled tensor.
    pub tensor: SparseTensor,
    /// Number of entries kept.
    pub kept: usize,
    /// Measured relative error of the unbiased energy estimate
    /// `Σ_kept v² / p_e` against the true `‖X‖²_F` — a cheap concentration
    /// check on the sample itself.
    pub energy_rel_err: f64,
}

/// MACH-style random entry sampling: keep each stored entry with
/// probability `keep` (uniform) or `min(1, keep·|v|/mean|v|)` (biased
/// toward high-magnitude entries, the goal-oriented weighting), and scale
/// survivors by the inverse keep probability so the sampled tensor is an
/// unbiased estimator of `X` entrywise.
///
/// Keep/drop decisions hash the entry's linear index, so the sample is a
/// pure function of `(seed, tensor)` — independent of iteration order,
/// partitioning and thread count.
pub fn mach_sample(x: &SparseTensor, keep: f64, biased: bool, seed: u64) -> Result<MachSample> {
    let _span = m2td_obs::span!("sketch.mach_sample");
    let keep = keep.clamp(f64::MIN_POSITIVE, 1.0);
    let mean_abs = if biased && x.nnz() > 0 {
        x.iter_linear().map(|(_, v)| v.abs()).sum::<f64>() / x.nnz() as f64
    } else {
        0.0
    };
    let mut indices = Vec::new();
    let mut values = Vec::new();
    let mut energy_est = 0.0;
    for (lin, v) in x.iter_linear() {
        let p = if biased && mean_abs > 0.0 {
            (keep * v.abs() / mean_abs).min(1.0)
        } else {
            keep
        };
        if counter_uniform(seed, lin, MACH_SITE) < p {
            indices.push(lin);
            values.push(v / p);
            energy_est += v * v / p;
        }
    }
    let kept = indices.len();
    let total = x.frobenius_norm().powi(2);
    let energy_rel_err = if total > 0.0 {
        (energy_est - total).abs() / total
    } else {
        0.0
    };
    m2td_obs::gauge_set("sketch.mach_kept", kept as f64);
    let tensor = SparseTensor::from_sorted_linear(x.dims(), indices, values)?;
    Ok(MachSample {
        tensor,
        kept,
        energy_rel_err,
    })
}

/// Sketched mode-`n` Gram: `G̃ = Y Yᵀ / s` with `Y = X₍ₙ₎ Ω` for a
/// counter-based Gaussian `Ω` — `E[ΩΩᵀ] = s·I` makes `G̃` an unbiased
/// estimator of `X₍ₙ₎X₍ₙ₎ᵀ`. Cost is `O(nnz·s + I_n²·s)` instead of the
/// exact route's `Σ_g |g|²` column-group accumulation, so it wins exactly
/// when the average unfolding column carries far more than `2s` nonzeros
/// (long fibers along big modes).
///
/// Returns the estimate together with its measured trace-concentration
/// error: `tr(X₍ₙ₎X₍ₙ₎ᵀ) = ‖X‖²_F` exactly (for every mode), so
/// `|tr G̃ − ‖X‖²| / ‖X‖²` is a free, honest sketch-quality statistic.
pub fn sketched_unfold_gram(
    x: &SparseTensor,
    mode: usize,
    cfg: &SketchConfig,
) -> Result<(Matrix, f64)> {
    x.shape().check_mode(mode)?;
    let _span = m2td_obs::span!("sketch.gram", mode = mode);
    let m = x.shape().dim(mode);
    let s = cfg.size.clamp(1, x.shape().unfold_cols(mode).max(1));
    m2td_obs::gauge_set("sketch.size", s as f64);
    let seed = cfg.seed_for(GRAM_SITE ^ (mode as u64) << 32);

    // Group entries by unfolding column (as the exact route does), so the
    // s Gaussian lanes of each column are generated once per column, not
    // once per entry. BTreeMap keeps accumulation order deterministic.
    let mut cols: BTreeMap<u64, Vec<(u32, f64)>> = BTreeMap::new();
    let mut idx = vec![0usize; x.order()];
    for (lin, v) in x.iter_linear() {
        x.shape().multi_index_into(lin as usize, &mut idx);
        let c = x.shape().unfold_col_index(mode, &idx) as u64;
        cols.entry(c).or_default().push((idx[mode] as u32, v));
    }
    let mut y = Matrix::zeros(m, s);
    let mut omega_row = vec![0.0; s];
    for (&c, group) in &cols {
        for (k, slot) in omega_row.iter_mut().enumerate() {
            *slot = counter_gaussian(seed, c, k as u64);
        }
        for &(i, v) in group {
            let row = y.row_mut(i as usize);
            for (k, &g) in omega_row.iter().enumerate() {
                row[k] += v * g;
            }
        }
    }
    let gram = y.gram_rows().scaled(1.0 / s as f64);

    let total = x.frobenius_norm().powi(2);
    let trace: f64 = (0..m).map(|i| gram.get(i, i)).sum();
    let rel_err = if total > 0.0 {
        (trace - total).abs() / total
    } else {
        0.0
    };
    m2td_obs::gauge_set("sketch.rel_err", rel_err);
    Ok((gram, rel_err))
}

// ---------------------------------------------------------------------------
// Op-count models (multiply-adds), mirroring `TtmPlan::predicted_madds`.
// ---------------------------------------------------------------------------

/// Predicted madds of the exact [`SparseTensor::unfold_gram`] for `mode`:
/// each unfolding column group `g` contributes its upper-triangular outer
/// product, `|g|·(|g|+1)/2`. Computed from the actual group sizes in one
/// `O(nnz)` counting pass.
pub fn exact_gram_madds(x: &SparseTensor, mode: usize) -> u64 {
    let mut sizes: BTreeMap<u64, u64> = BTreeMap::new();
    let mut idx = vec![0usize; x.order()];
    for (lin, _) in x.iter_linear() {
        x.shape().multi_index_into(lin as usize, &mut idx);
        *sizes
            .entry(x.shape().unfold_col_index(mode, &idx) as u64)
            .or_default() += 1;
    }
    sizes.values().map(|&g| g * (g + 1) / 2).sum()
}

/// Predicted madds of [`sketched_unfold_gram`]: the sparse sketch product
/// (`nnz·s`), the thin Gram (`s·I_n(I_n+1)/2`), and one Gaussian lane per
/// distinct column (`cols·s`, counted as madd-equivalents).
pub fn sketched_gram_madds(nnz: usize, mode_dim: usize, distinct_cols: usize, s: usize) -> u64 {
    let (nnz, m, c, s) = (nnz as u64, mode_dim as u64, distinct_cols as u64, s as u64);
    nnz * s + s * m * (m + 1) / 2 + c * s
}

/// Number of distinct unfolding columns of `x` along `mode` (the `cols`
/// input of [`sketched_gram_madds`]), via the same counting pass as
/// [`exact_gram_madds`].
pub fn distinct_unfold_cols(x: &SparseTensor, mode: usize) -> usize {
    let mut cols: BTreeMap<u64, ()> = BTreeMap::new();
    let mut idx = vec![0usize; x.order()];
    for (lin, _) in x.iter_linear() {
        x.shape().multi_index_into(lin as usize, &mut idx);
        cols.insert(x.shape().unfold_col_index(mode, &idx) as u64, ());
    }
    cols.len()
}

// ---------------------------------------------------------------------------
// Guarded dispatch
// ---------------------------------------------------------------------------

/// Mode-`n` Gram for the Phase-1 factor computations (`m2td-core` and
/// `m2td-dist` route through here): the exact [`SparseTensor::unfold_gram`]
/// while `m2td_sketch` is uninstalled; otherwise the cheapest route the
/// op-count model predicts, gated on its measured error with exact
/// fallback (`sketch.fallbacks`).
///
/// Pure function of `(tensor, mode, installed sketch config)` — dist
/// workers and the serial path compute bitwise-identical Grams.
pub fn phase_gram(x: &SparseTensor, mode: usize) -> Result<Matrix> {
    if !m2td_sketch::installed() {
        return x.unfold_gram(mode);
    }
    let cfg = m2td_sketch::config();
    match cfg.policy {
        SketchPolicy::Gaussian => {
            let s = cfg.size.clamp(1, x.shape().unfold_cols(mode).max(1));
            let exact = exact_gram_madds(x, mode);
            let sketched = sketched_gram_madds(
                x.nnz(),
                x.shape().dim(mode),
                distinct_unfold_cols(x, mode),
                s,
            );
            if sketched >= exact {
                // The model says the exact route is already cheaper here
                // (short column groups); planning, not a failure.
                return x.unfold_gram(mode);
            }
            let gated = m2td_guard::with_error_budget(m2td_sketch::DEFAULT_SKETCH_BUDGET, || {
                sketched_unfold_gram(x, mode, &cfg).map_err(guard_wrap)
            });
            match gated {
                Ok((gram, _err, gate)) if gate.accepted() => Ok(gram),
                _ => {
                    m2td_obs::counter_add("sketch.fallbacks", 1);
                    x.unfold_gram(mode)
                }
            }
        }
        SketchPolicy::Mach { keep } | SketchPolicy::MachBiased { keep } => {
            let biased = matches!(cfg.policy, SketchPolicy::MachBiased { .. });
            let gated = m2td_guard::with_error_budget(m2td_sketch::DEFAULT_SKETCH_BUDGET, || {
                let s =
                    mach_sample(x, keep, biased, cfg.seed_for(MACH_SITE)).map_err(guard_wrap)?;
                let err = if s.kept == 0 {
                    f64::INFINITY
                } else {
                    s.energy_rel_err
                };
                Ok((s, err))
            });
            match gated {
                Ok((sample, _err, gate)) if gate.accepted() => sample.tensor.unfold_gram(mode),
                _ => {
                    m2td_obs::counter_add("sketch.fallbacks", 1);
                    x.unfold_gram(mode)
                }
            }
        }
    }
}

/// Maps a tensor error into the guard error space for
/// [`m2td_guard::with_error_budget`] closures (and back out via
/// `TensorError: From<GuardError>`).
fn guard_wrap(e: crate::TensorError) -> m2td_guard::GuardError {
    match e {
        crate::TensorError::Linalg(l) => m2td_guard::GuardError::Linalg(l),
        crate::TensorError::Guard(g) => g,
        // Structural errors (bad mode, shape mismatch, empty sample)
        // cannot reach the caller: the guarded wrappers fall back to the
        // exact route on any closure error, which re-raises the original
        // diagnostics if the problem is real. Surface as a convergence
        // failure rather than panicking.
        _ => m2td_guard::GuardError::Linalg(m2td_linalg::LinalgError::NoConvergence {
            kernel: "sketch",
            iterations: 0,
        }),
    }
}

/// Sketched sparse HOSVD: per-mode factors from the randomized route the
/// installed policy selects, core recovered from the **full** tensor.
///
/// Because the factors are orthonormal and the core is the projection of
/// the full `X`, the relative reconstruction error is free:
/// `‖X − X̃‖²_F = ‖X‖²_F − ‖G‖²_F` — no per-entry reconstruction pass.
/// Returns the decomposition with that measured error.
pub fn hosvd_sparse_sketched(
    x: &SparseTensor,
    ranks: &[usize],
    cfg: &SketchConfig,
) -> Result<(TuckerDecomp, f64)> {
    let _span = m2td_obs::span!("tensor.hosvd_sketched");
    let factors = sketched_mode_factors(x, ranks, cfg)?;
    let core = sparse_core(x, &factors, CoreOrdering::BestShrinkFirst)?;
    let total = x.frobenius_norm().powi(2);
    let captured = core.frobenius_norm().powi(2);
    let rel_err = if total > 0.0 {
        ((total - captured).max(0.0) / total).sqrt()
    } else {
        0.0
    };
    m2td_obs::gauge_set("sketch.rel_err", rel_err);
    Ok((TuckerDecomp::new(core, factors)?, rel_err))
}

/// Per-mode factors under the installed sketch policy: Gaussian sketched
/// Grams (with op-count planning per mode) or one shared MACH sample with
/// exact Grams on the thin sample. Spectrum extraction still routes
/// through the guard layer ([`gram_factor`]).
pub(crate) fn sketched_mode_factors(
    x: &SparseTensor,
    ranks: &[usize],
    cfg: &SketchConfig,
) -> Result<Vec<Matrix>> {
    match cfg.policy {
        SketchPolicy::Gaussian => {
            let modes: Vec<(usize, usize)> = ranks.iter().copied().enumerate().collect();
            m2td_par::par_map(&modes, |&(mode, r)| -> Result<_> {
                let s = cfg.size.clamp(1, x.shape().unfold_cols(mode).max(1));
                let sketched = sketched_gram_madds(
                    x.nnz(),
                    x.shape().dim(mode),
                    distinct_unfold_cols(x, mode),
                    s,
                );
                let gram = if sketched < exact_gram_madds(x, mode) {
                    sketched_unfold_gram(x, mode, cfg)?.0
                } else {
                    x.unfold_gram(mode)?
                };
                gram_factor(&gram, r, mode)
            })
            .into_iter()
            .collect()
        }
        SketchPolicy::Mach { keep } | SketchPolicy::MachBiased { keep } => {
            let biased = matches!(cfg.policy, SketchPolicy::MachBiased { .. });
            let sample = mach_sample(x, keep, biased, cfg.seed_for(MACH_SITE))?;
            if sample.kept == 0 {
                // Nothing survived sampling; the caller's budget gate will
                // reject the (vacuous) factors via the measured error.
                return Err(crate::TensorError::EmptyTensor);
            }
            let modes: Vec<(usize, usize)> = ranks.iter().copied().enumerate().collect();
            m2td_par::par_map(&modes, |&(mode, r)| -> Result<_> {
                let gram = sample.tensor.unfold_gram(mode)?;
                gram_factor(&gram, r, mode)
            })
            .into_iter()
            .collect()
        }
    }
}

/// [`hosvd_sparse_sketched`] gated by [`m2td_guard::with_error_budget`]:
/// accepted within budget, otherwise (or on any sketch-induced failure)
/// the exact [`crate::hosvd::hosvd_sparse_exact`] runs and
/// `sketch.fallbacks` is bumped. This is what [`crate::hosvd_sparse`]
/// dispatches to while sketching is installed.
pub(crate) fn hosvd_sparse_guarded(
    x: &SparseTensor,
    ranks: &[usize],
    cfg: &SketchConfig,
) -> Result<TuckerDecomp> {
    let gated = m2td_guard::with_error_budget(m2td_sketch::DEFAULT_SKETCH_BUDGET, || {
        hosvd_sparse_sketched(x, ranks, cfg).map_err(guard_wrap)
    });
    match gated {
        Ok((decomp, _err, gate)) if gate.accepted() => Ok(decomp),
        Ok(_) | Err(_) => {
            // Over budget, or the sketch itself degenerated (e.g. an
            // empty/deficient sample): retry exactly. A genuine data
            // problem (NaN cells, impossible ranks) re-surfaces from the
            // exact route with its original diagnostics.
            m2td_obs::counter_add("sketch.fallbacks", 1);
            crate::hosvd::hosvd_sparse_exact(x, ranks)
        }
    }
}

/// Sketched sparse HOOI. MACH policies run every sweep on one thin entry
/// sample (the order-of-magnitude lever: sweep cost scales with the
/// sample's nnz), then recover the final core from the **full** tensor so
/// the free error identity applies; the Gaussian policy sketches only the
/// HOSVD initialization and sweeps exactly. Returns the outcome with its
/// measured relative reconstruction error.
pub fn hooi_sparse_sketched(
    x: &SparseTensor,
    ranks: &[usize],
    opts: HooiOptions,
    cfg: &SketchConfig,
) -> Result<(HooiOutcome, f64)> {
    let _span = m2td_obs::span!("tensor.hooi_sketched");
    let (decomp, sweeps) = match cfg.policy {
        SketchPolicy::Gaussian => {
            let (init, _err) = hosvd_sparse_sketched(x, ranks, cfg)?;
            hooi_sparse_from(x, init, ranks, opts)?
        }
        SketchPolicy::Mach { keep } | SketchPolicy::MachBiased { keep } => {
            let biased = matches!(cfg.policy, SketchPolicy::MachBiased { .. });
            let sample = mach_sample(x, keep, biased, cfg.seed_for(MACH_SITE))?;
            if sample.kept == 0 {
                return Err(crate::TensorError::EmptyTensor);
            }
            let (thin, sweeps) = hooi_sparse_exact(&sample.tensor, ranks, opts)?;
            // The sampled tensor picked the subspaces; the core must come
            // from the full data (also what makes the error identity free).
            let core = sparse_core(x, &thin.factors, CoreOrdering::BestShrinkFirst)?;
            (TuckerDecomp::new(core, thin.factors)?, sweeps)
        }
    };
    let total = x.frobenius_norm().powi(2);
    let captured = decomp.core.frobenius_norm().powi(2);
    let rel_err = if total > 0.0 {
        ((total - captured).max(0.0) / total).sqrt()
    } else {
        0.0
    };
    m2td_obs::gauge_set("sketch.rel_err", rel_err);
    Ok(((decomp, sweeps), rel_err))
}

/// [`hooi_sparse_sketched`] gated by [`m2td_guard::with_error_budget`]
/// with exact fallback — the dispatch target of [`crate::hooi_sparse`]
/// while sketching is installed.
pub(crate) fn hooi_sparse_guarded(
    x: &SparseTensor,
    ranks: &[usize],
    opts: HooiOptions,
    cfg: &SketchConfig,
) -> Result<HooiOutcome> {
    let gated = m2td_guard::with_error_budget(m2td_sketch::DEFAULT_SKETCH_BUDGET, || {
        hooi_sparse_sketched(x, ranks, opts, cfg).map_err(guard_wrap)
    });
    match gated {
        Ok((outcome, _err, gate)) if gate.accepted() => Ok(outcome),
        Ok(_) | Err(_) => {
            m2td_obs::counter_add("sketch.fallbacks", 1);
            hooi_sparse_exact(x, ranks, opts)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseTensor;
    use crate::hosvd::hosvd_sparse_exact;

    fn dense_ish(dims: &[usize], fill_mod: usize) -> SparseTensor {
        let shape = crate::shape::Shape::new(dims);
        let entries: Vec<(Vec<usize>, f64)> = (0..shape.num_elements())
            .filter(|l| l % fill_mod == 0)
            .map(|l| {
                let idx = shape.multi_index(l);
                let smooth: f64 = idx
                    .iter()
                    .enumerate()
                    .map(|(m, &i)| ((i as f64) * (0.2 + 0.1 * m as f64)).sin() + 1.2)
                    .product();
                (idx, smooth + 0.05 * ((l as f64) * 0.77).sin())
            })
            .collect();
        SparseTensor::from_entries(dims, &entries).unwrap()
    }

    #[test]
    fn mach_sample_is_seed_deterministic_and_unbiased_in_energy() {
        let x = dense_ish(&[8, 6, 5], 2);
        let a = mach_sample(&x, 0.5, false, 7).unwrap();
        let b = mach_sample(&x, 0.5, false, 7).unwrap();
        assert_eq!(a.kept, b.kept);
        assert_eq!(
            a.tensor.iter_linear().collect::<Vec<_>>(),
            b.tensor.iter_linear().collect::<Vec<_>>()
        );
        assert!(a.kept > 0 && a.kept < x.nnz());
        // The unbiased energy estimate concentrates.
        assert!(
            a.energy_rel_err < 0.5,
            "energy estimate off by {}",
            a.energy_rel_err
        );
        // Different seed, different sample.
        let c = mach_sample(&x, 0.5, false, 8).unwrap();
        assert_ne!(
            a.tensor.iter_linear().collect::<Vec<_>>(),
            c.tensor.iter_linear().collect::<Vec<_>>()
        );
    }

    #[test]
    fn biased_mach_keeps_large_entries_preferentially() {
        // A tensor with a few huge entries in a sea of tiny ones: the
        // biased sampler must keep (essentially) all of the huge ones.
        let dims = [10, 10];
        let entries: Vec<(Vec<usize>, f64)> = (0..100)
            .map(|l| {
                let v = if l % 10 == 0 { 50.0 } else { 0.01 };
                (vec![l / 10, l % 10], v)
            })
            .collect();
        let x = SparseTensor::from_entries(&dims, &entries).unwrap();
        let s = mach_sample(&x, 0.3, true, 3).unwrap();
        let big_kept = s.tensor.iter().filter(|(idx, _)| idx[1] == 0).count();
        assert_eq!(big_kept, 10, "magnitude bias must keep all huge entries");
        // Huge entries have p = 1, so they are not rescaled.
        for (idx, v) in s.tensor.iter() {
            if idx[1] == 0 {
                assert_eq!(v, 50.0);
            }
        }
    }

    #[test]
    fn sketched_gram_estimates_the_exact_gram() {
        let x = dense_ish(&[6, 8, 7], 1);
        let cfg = SketchConfig::with_size(64).with_seed(11);
        let (approx, rel_err) = sketched_unfold_gram(&x, 0, &cfg).unwrap();
        let exact = x.unfold_gram(0).unwrap();
        assert_eq!(approx.shape(), exact.shape());
        assert!(rel_err < 0.35, "trace error {rel_err} too large at s=64");
        // Entrywise the estimate tracks the exact Gram at sketch scale.
        let diff = approx
            .as_slice()
            .iter()
            .zip(exact.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        let scale = exact.max_abs();
        assert!(
            diff < scale,
            "sketched Gram deviates by {diff} against scale {scale}"
        );
        // Deterministic in the seed.
        let (again, _) = sketched_unfold_gram(&x, 0, &cfg).unwrap();
        assert_eq!(approx.as_slice(), again.as_slice());
    }

    #[test]
    fn op_count_model_favors_sketch_only_for_long_columns() {
        // Long fibers along a 64-dim mode: exact pays |g|² per column.
        let tall = dense_ish(&[64, 6, 6], 1);
        let s = 8;
        let sketched = sketched_gram_madds(tall.nnz(), 64, distinct_unfold_cols(&tall, 0), s);
        let exact = exact_gram_madds(&tall, 0);
        assert!(sketched < exact, "sketch {sketched} !< exact {exact}");
        // Short groups (mode dim 3): the exact route must win and the
        // planner must say so.
        let sketched1 = sketched_gram_madds(tall.nnz(), 3, distinct_unfold_cols(&tall, 1), s);
        let exact1 = exact_gram_madds(&tall, 1);
        assert!(sketched1 > exact1, "sketch {sketched1} !> exact {exact1}");
    }

    #[test]
    fn mach_shrinks_predicted_gram_work() {
        let x = dense_ish(&[12, 12, 12], 1);
        let sample = mach_sample(&x, 0.3, false, 5).unwrap();
        for mode in 0..3 {
            let full = exact_gram_madds(&x, mode);
            let thin = exact_gram_madds(&sample.tensor, mode);
            assert!(
                thin * 4 < full,
                "mode {mode}: sampled gram {thin} not ≪ full {full}"
            );
        }
    }

    #[test]
    fn phase_gram_uninstalled_is_bitwise_exact() {
        let _g = crate::test_support::sketch_lock();
        m2td_sketch::uninstall();
        let x = dense_ish(&[6, 5, 4], 2);
        let a = phase_gram(&x, 1).unwrap();
        let b = x.unfold_gram(1).unwrap();
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn phase_gram_mach_route_is_gated_and_deterministic() {
        let _g = crate::test_support::sketch_lock();
        let x = dense_ish(&[10, 8, 6], 1);
        m2td_sketch::install(
            SketchConfig::with_size(8)
                .with_seed(21)
                .with_policy(SketchPolicy::Mach { keep: 0.5 }),
        );
        let a = phase_gram(&x, 0).unwrap();
        let b = phase_gram(&x, 0).unwrap();
        m2td_sketch::uninstall();
        assert_eq!(a.as_slice(), b.as_slice());
        // The sampled Gram differs from the exact one (it really sketched).
        let exact = x.unfold_gram(0).unwrap();
        assert_ne!(a.as_slice(), exact.as_slice());
    }

    #[test]
    fn sketched_hosvd_error_matches_true_reconstruction_error() {
        let x = dense_ish(&[8, 7, 6], 1);
        let cfg = SketchConfig::with_size(16)
            .with_seed(9)
            .with_policy(SketchPolicy::Mach { keep: 0.6 });
        let (decomp, rel_err) = hosvd_sparse_sketched(&x, &[3, 3, 3], &cfg).unwrap();
        let dense = x.to_dense().unwrap();
        let true_err = decomp.relative_error(&dense).unwrap();
        assert!(
            (rel_err - true_err).abs() < 1e-9,
            "free identity {rel_err} vs true {true_err}"
        );
        // And the sketched error is in the same ballpark as exact HOSVD.
        let exact_err = hosvd_sparse_exact(&x, &[3, 3, 3])
            .unwrap()
            .relative_error(&dense)
            .unwrap();
        assert!(
            rel_err <= exact_err + 0.25,
            "sketched {rel_err} ≫ exact {exact_err}"
        );
    }

    #[test]
    fn dense_tensor_roundtrip_sanity() {
        // Guard against from_sorted_linear misuse in mach_sample: the
        // sample must load back into the same dense positions.
        let x = dense_ish(&[4, 4], 1);
        let s = mach_sample(&x, 1.0, false, 1).unwrap();
        assert_eq!(s.kept, x.nnz());
        let a: DenseTensor = x.to_dense().unwrap();
        let b: DenseTensor = s.tensor.to_dense().unwrap();
        assert_eq!(a.as_slice(), b.as_slice());
    }
}
