//! Sparse COO tensor.
//!
//! Simulation ensembles are inherently sparse (Section I-B of the paper):
//! a budget `B` of simulations in an `I₁×…×I_N` space leaves almost every
//! cell null. `SparseTensor` stores the executed simulations as sorted
//! `(linear index, value)` pairs.
//!
//! Null cells and *zero-valued results* are distinct concepts in the
//! ensemble setting: a stored entry with value `0.0` is a simulation that
//! ran and produced 0, while an absent entry is a simulation that never
//! ran. The decomposition kernels, like the paper's, treat absent cells as
//! zeros; the stitching layer (crate `m2td-stitch`) is where the
//! distinction matters.

use crate::dense::DenseTensor;
use crate::error::TensorError;
use crate::shape::Shape;
use crate::Result;
use m2td_linalg::Matrix;
use std::collections::{BTreeMap, HashMap};

/// A sparse `N`-mode tensor in coordinate format, sorted by row-major
/// linear index, with at most one entry per coordinate.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseTensor {
    shape: Shape,
    /// Row-major linear indices, strictly increasing.
    indices: Vec<u64>,
    /// Values, parallel to `indices`.
    values: Vec<f64>,
}

impl SparseTensor {
    /// Creates an empty sparse tensor of the given shape.
    pub fn empty(dims: &[usize]) -> Self {
        Self {
            shape: Shape::new(dims),
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Creates a sparse tensor from `(multi-index, value)` pairs.
    ///
    /// Duplicate coordinates are rejected; out-of-bounds indices error.
    pub fn from_entries(dims: &[usize], entries: &[(Vec<usize>, f64)]) -> Result<Self> {
        let shape = Shape::new(dims);
        let mut pairs: Vec<(u64, f64)> = Vec::with_capacity(entries.len());
        for (idx, v) in entries {
            shape.check_index(idx)?;
            pairs.push((shape.linear_index(idx) as u64, *v));
        }
        pairs.sort_unstable_by_key(|&(i, _)| i);
        for w in pairs.windows(2) {
            if w[0].0 == w[1].0 {
                return Err(TensorError::IndexOutOfBounds {
                    index: shape.multi_index(w[0].0 as usize),
                    shape: dims.to_vec(),
                });
            }
        }
        let (indices, values) = pairs.into_iter().unzip();
        Ok(Self {
            shape,
            indices,
            values,
        })
    }

    /// Builds a sparse tensor by running `f` on a caller-supplied list of
    /// multi-indices (the "ensemble plan"). Duplicates in the plan are
    /// collapsed to the *first* occurrence.
    pub fn from_plan(
        dims: &[usize],
        plan: &[Vec<usize>],
        mut f: impl FnMut(&[usize]) -> f64,
    ) -> Result<Self> {
        let shape = Shape::new(dims);
        let mut map: HashMap<u64, f64> = HashMap::with_capacity(plan.len());
        for idx in plan {
            shape.check_index(idx)?;
            let lin = shape.linear_index(idx) as u64;
            map.entry(lin).or_insert_with(|| f(idx));
        }
        let mut pairs: Vec<(u64, f64)> = map.into_iter().collect();
        pairs.sort_unstable_by_key(|&(i, _)| i);
        let (indices, values) = pairs.into_iter().unzip();
        Ok(Self {
            shape,
            indices,
            values,
        })
    }

    /// Creates a sparse tensor from pre-sorted, strictly increasing linear
    /// indices and parallel values. This is the fast path used by the
    /// stitching layer, which produces entries already in row-major order.
    ///
    /// Returns an error if the invariants do not hold.
    pub fn from_sorted_linear(dims: &[usize], indices: Vec<u64>, values: Vec<f64>) -> Result<Self> {
        let shape = Shape::new(dims);
        if indices.len() != values.len() {
            return Err(TensorError::ShapeMismatch {
                expected: vec![indices.len()],
                actual: vec![values.len()],
                op: "from_sorted_linear",
            });
        }
        let total = shape.num_elements() as u64;
        if indices.last().is_some_and(|&l| l >= total) {
            return Err(TensorError::IndexOutOfBounds {
                index: shape.multi_index(*indices.last().unwrap() as usize % total.max(1) as usize),
                shape: dims.to_vec(),
            });
        }
        if indices.windows(2).any(|w| w[0] >= w[1]) {
            return Err(TensorError::ShapeMismatch {
                expected: vec![],
                actual: vec![],
                op: "from_sorted_linear (indices not strictly increasing)",
            });
        }
        Ok(Self {
            shape,
            indices,
            values,
        })
    }

    /// The tensor shape.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Mode extents.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Tensor order.
    #[inline]
    pub fn order(&self) -> usize {
        self.shape.order()
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Fraction of cells that are stored: `nnz / Π I_n`.
    pub fn density(&self) -> f64 {
        let total = self.shape.num_elements();
        if total == 0 {
            0.0
        } else {
            self.nnz() as f64 / total as f64
        }
    }

    /// Returns the stored value at `index`, or `None` when the cell is null
    /// (i.e. the simulation was never run).
    pub fn get(&self, index: &[usize]) -> Option<f64> {
        self.shape.check_index(index).ok()?;
        let lin = self.shape.linear_index(index) as u64;
        self.indices
            .binary_search(&lin)
            .ok()
            .map(|pos| self.values[pos])
    }

    /// Iterates over `(multi-index, value)` pairs in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (Vec<usize>, f64)> + '_ {
        self.indices
            .iter()
            .zip(self.values.iter())
            .map(|(&lin, &v)| (self.shape.multi_index(lin as usize), v))
    }

    /// Iterates over raw `(linear index, value)` pairs.
    pub fn iter_linear(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.indices
            .iter()
            .zip(self.values.iter())
            .map(|(&l, &v)| (l, v))
    }

    /// Frobenius norm over the stored entries.
    pub fn frobenius_norm(&self) -> f64 {
        m2td_linalg::norm2(&self.values)
    }

    /// Materializes the tensor densely (nulls become 0). Intended for small
    /// shapes (tests, ground-truth comparison); errors on empty shapes.
    pub fn to_dense(&self) -> Result<DenseTensor> {
        let mut out = DenseTensor::zeros(self.dims());
        if out.num_elements() == 0 && self.nnz() > 0 {
            return Err(TensorError::EmptyTensor);
        }
        let data = out.as_mut_slice();
        for (&lin, &v) in self.indices.iter().zip(self.values.iter()) {
            data[lin as usize] = v;
        }
        Ok(out)
    }

    /// Builds a sparse tensor from the non-zero cells of a dense tensor.
    pub fn from_dense(dense: &DenseTensor) -> Self {
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for (lin, &v) in dense.as_slice().iter().enumerate() {
            if v != 0.0 {
                indices.push(lin as u64);
                values.push(v);
            }
        }
        Self {
            shape: dense.shape().clone(),
            indices,
            values,
        }
    }

    /// Mode-`n` matricization materialized densely
    /// (`I_n × Π_{m≠n} I_m`). Only for small tensors/tests — the pipeline
    /// itself uses [`Self::unfold_gram`].
    pub fn unfold(&self, mode: usize) -> Result<Matrix> {
        self.shape.check_mode(mode)?;
        let rows = self.shape.dim(mode);
        let cols = self.shape.unfold_cols(mode);
        let mut out = Matrix::zeros(rows, cols);
        let mut idx = vec![0usize; self.order()];
        for (&lin, &v) in self.indices.iter().zip(self.values.iter()) {
            self.shape.multi_index_into(lin as usize, &mut idx);
            out.set(idx[mode], self.shape.unfold_col_index(mode, &idx), v);
        }
        Ok(out)
    }

    /// Gram matrix of the mode-`n` matricization, `X₍ₙ₎ X₍ₙ₎ᵀ`
    /// (`I_n × I_n`), computed directly from the sparse entries without
    /// materializing the (enormous) unfolding.
    ///
    /// Entries are grouped by their unfolding column (the "rest index");
    /// each group contributes the outer product of its column vector.
    pub fn unfold_gram(&self, mode: usize) -> Result<Matrix> {
        self.shape.check_mode(mode)?;
        let _span = m2td_obs::span!("tensor.unfold_gram", mode = mode);
        let n = self.shape.dim(mode);
        let mut out = Matrix::zeros(n, n);

        // Group (mode index, value) by unfolding column. BTreeMap keeps
        // the accumulation order deterministic, so Gram matrices (and the
        // eigenvectors derived from them) are bit-identical across runs
        // and across the serial/distributed code paths.
        let mut cols: BTreeMap<u64, Vec<(u32, f64)>> = BTreeMap::new();
        let mut idx = vec![0usize; self.order()];
        for (&lin, &v) in self.indices.iter().zip(self.values.iter()) {
            self.shape.multi_index_into(lin as usize, &mut idx);
            let c = self.shape.unfold_col_index(mode, &idx) as u64;
            cols.entry(c).or_default().push((idx[mode] as u32, v));
        }
        for group in cols.values() {
            for &(i, vi) in group {
                for &(j, vj) in group {
                    if j >= i {
                        let cur = out.get(i as usize, j as usize);
                        out.set(i as usize, j as usize, cur + vi * vj);
                    }
                }
            }
        }
        // Mirror the upper triangle.
        for i in 0..n {
            for j in 0..i {
                let v = out.get(j, i);
                out.set(i, j, v);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SparseTensor {
        SparseTensor::from_entries(
            &[3, 4, 2],
            &[
                (vec![0, 0, 0], 1.0),
                (vec![1, 2, 0], -2.0),
                (vec![2, 3, 1], 3.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_get() {
        let t = sample();
        assert_eq!(t.nnz(), 3);
        assert_eq!(t.get(&[1, 2, 0]), Some(-2.0));
        assert_eq!(t.get(&[1, 2, 1]), None);
        assert_eq!(t.get(&[9, 9, 9]), None);
    }

    #[test]
    fn duplicate_entries_rejected() {
        let r = SparseTensor::from_entries(&[2, 2], &[(vec![0, 0], 1.0), (vec![0, 0], 2.0)]);
        assert!(r.is_err());
    }

    #[test]
    fn out_of_bounds_rejected() {
        assert!(SparseTensor::from_entries(&[2, 2], &[(vec![2, 0], 1.0)]).is_err());
    }

    #[test]
    fn density_calculation() {
        let t = sample();
        assert!((t.density() - 3.0 / 24.0).abs() < 1e-15);
        assert_eq!(SparseTensor::empty(&[0]).density(), 0.0);
    }

    #[test]
    fn dense_round_trip() {
        let t = sample();
        let d = t.to_dense().unwrap();
        assert_eq!(d.get(&[2, 3, 1]), 3.0);
        assert_eq!(d.get(&[0, 1, 0]), 0.0);
        let back = SparseTensor::from_dense(&d);
        assert_eq!(back, t);
    }

    #[test]
    fn from_plan_runs_oracle_once_per_cell() {
        let mut calls = 0;
        let plan = vec![vec![0, 0], vec![1, 1], vec![0, 0]];
        let t = SparseTensor::from_plan(&[2, 2], &plan, |idx| {
            calls += 1;
            (idx[0] + idx[1]) as f64
        })
        .unwrap();
        assert_eq!(calls, 2, "duplicate plan entries must not re-run");
        assert_eq!(t.nnz(), 2);
        assert_eq!(t.get(&[1, 1]), Some(2.0));
    }

    #[test]
    fn sparse_unfold_matches_dense_unfold() {
        let t = sample();
        let d = t.to_dense().unwrap();
        for mode in 0..3 {
            let su = t.unfold(mode).unwrap();
            let du = d.unfold(mode).unwrap();
            assert_eq!(su, du, "unfold mismatch in mode {mode}");
        }
    }

    #[test]
    fn unfold_gram_matches_explicit_gram() {
        let t = sample();
        for mode in 0..3 {
            let g = t.unfold_gram(mode).unwrap();
            let m = t.unfold(mode).unwrap();
            let explicit = m.gram_rows();
            let diff = g.sub(&explicit).unwrap().frobenius_norm();
            assert!(diff < 1e-12, "gram mismatch in mode {mode}: {diff}");
        }
    }

    #[test]
    fn frobenius_norm_counts_stored_values() {
        let t =
            SparseTensor::from_entries(&[2, 2], &[(vec![0, 0], 3.0), (vec![1, 1], 4.0)]).unwrap();
        assert!((t.frobenius_norm() - 5.0).abs() < 1e-15);
    }

    #[test]
    fn iter_is_sorted_row_major() {
        let t = sample();
        let idxs: Vec<_> = t.iter().map(|(i, _)| i).collect();
        assert_eq!(idxs[0], vec![0, 0, 0]);
        assert_eq!(idxs[2], vec![2, 3, 1]);
    }

    #[test]
    fn empty_tensor_behaviour() {
        let t = SparseTensor::empty(&[4, 4]);
        assert_eq!(t.nnz(), 0);
        assert_eq!(t.frobenius_norm(), 0.0);
        let g = t.unfold_gram(0).unwrap();
        assert_eq!(g.frobenius_norm(), 0.0);
    }

    #[test]
    fn from_sorted_linear_validates() {
        let ok = SparseTensor::from_sorted_linear(&[2, 2], vec![0, 3], vec![1.0, 2.0]).unwrap();
        assert_eq!(ok.get(&[1, 1]), Some(2.0));
        // Length mismatch.
        assert!(SparseTensor::from_sorted_linear(&[2, 2], vec![0], vec![1.0, 2.0]).is_err());
        // Out of range.
        assert!(SparseTensor::from_sorted_linear(&[2, 2], vec![4], vec![1.0]).is_err());
        // Not strictly increasing.
        assert!(SparseTensor::from_sorted_linear(&[2, 2], vec![1, 1], vec![1.0, 2.0]).is_err());
        assert!(SparseTensor::from_sorted_linear(&[2, 2], vec![2, 1], vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn stored_zero_differs_from_null() {
        let t = SparseTensor::from_entries(&[2, 2], &[(vec![0, 1], 0.0)]).unwrap();
        assert_eq!(t.get(&[0, 1]), Some(0.0));
        assert_eq!(t.get(&[1, 0]), None);
        assert_eq!(t.nnz(), 1);
    }
}
