//! Sparse COO tensor.
//!
//! Simulation ensembles are inherently sparse (Section I-B of the paper):
//! a budget `B` of simulations in an `I₁×…×I_N` space leaves almost every
//! cell null. `SparseTensor` stores the executed simulations as sorted
//! `(linear index, value)` pairs.
//!
//! Null cells and *zero-valued results* are distinct concepts in the
//! ensemble setting: a stored entry with value `0.0` is a simulation that
//! ran and produced 0, while an absent entry is a simulation that never
//! ran. The decomposition kernels, like the paper's, treat absent cells as
//! zeros; the stitching layer (crate `m2td-stitch`) is where the
//! distinction matters.

use crate::dense::DenseTensor;
use crate::error::TensorError;
use crate::shape::Shape;
use crate::Result;
use m2td_linalg::Matrix;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

/// A sparse `N`-mode tensor in coordinate format, sorted by row-major
/// linear index, with at most one entry per coordinate.
///
/// Entries are immutable after construction; the only mutable state is a
/// shared, lazily-built [`ModeScatterIndex`] cache that the TTM scatter
/// kernels use to turn the entry stream into contiguous per-output-cell
/// groups. Clones share the cache (the entries it indexes are the same),
/// and equality ignores it.
#[derive(Debug, Clone)]
pub struct SparseTensor {
    shape: Shape,
    /// Row-major linear indices, strictly increasing.
    indices: Vec<u64>,
    /// Values, parallel to `indices`.
    values: Vec<f64>,
    /// Lazily-built per-mode scatter indices (see [`ModeScatterIndex`]).
    cache: Arc<ScatterCache>,
}

impl PartialEq for SparseTensor {
    fn eq(&self, other: &Self) -> bool {
        // The scatter cache is derived state; two tensors with the same
        // entries are equal regardless of which indices have been built.
        self.shape == other.shape && self.indices == other.indices && self.values == other.values
    }
}

impl SparseTensor {
    fn assemble(shape: Shape, indices: Vec<u64>, values: Vec<f64>) -> Self {
        Self {
            shape,
            indices,
            values,
            cache: Arc::default(),
        }
    }

    /// Creates an empty sparse tensor of the given shape.
    pub fn empty(dims: &[usize]) -> Self {
        Self::assemble(Shape::new(dims), Vec::new(), Vec::new())
    }

    /// Creates a sparse tensor from `(multi-index, value)` pairs.
    ///
    /// Duplicate coordinates are rejected; out-of-bounds indices error.
    pub fn from_entries(dims: &[usize], entries: &[(Vec<usize>, f64)]) -> Result<Self> {
        let shape = Shape::new(dims);
        let mut pairs: Vec<(u64, f64)> = Vec::with_capacity(entries.len());
        for (idx, v) in entries {
            shape.check_index(idx)?;
            pairs.push((shape.linear_index(idx) as u64, *v));
        }
        pairs.sort_unstable_by_key(|&(i, _)| i);
        for w in pairs.windows(2) {
            if w[0].0 == w[1].0 {
                return Err(TensorError::DuplicateEntry {
                    index: shape.multi_index(w[0].0 as usize),
                    shape: dims.to_vec(),
                });
            }
        }
        let (indices, values) = pairs.into_iter().unzip();
        Ok(Self::assemble(shape, indices, values))
    }

    /// Builds a sparse tensor by running `f` on a caller-supplied list of
    /// multi-indices (the "ensemble plan"). Duplicates in the plan are
    /// collapsed to the *first* occurrence.
    pub fn from_plan(
        dims: &[usize],
        plan: &[Vec<usize>],
        mut f: impl FnMut(&[usize]) -> f64,
    ) -> Result<Self> {
        let shape = Shape::new(dims);
        let mut map: HashMap<u64, f64> = HashMap::with_capacity(plan.len());
        for idx in plan {
            shape.check_index(idx)?;
            let lin = shape.linear_index(idx) as u64;
            map.entry(lin).or_insert_with(|| f(idx));
        }
        let mut pairs: Vec<(u64, f64)> = map.into_iter().collect();
        pairs.sort_unstable_by_key(|&(i, _)| i);
        let (indices, values) = pairs.into_iter().unzip();
        Ok(Self::assemble(shape, indices, values))
    }

    /// Creates a sparse tensor from pre-sorted, strictly increasing linear
    /// indices and parallel values. This is the fast path used by the
    /// stitching layer, which produces entries already in row-major order.
    ///
    /// Returns an error if the invariants do not hold.
    pub fn from_sorted_linear(dims: &[usize], indices: Vec<u64>, values: Vec<f64>) -> Result<Self> {
        let shape = Shape::new(dims);
        if indices.len() != values.len() {
            return Err(TensorError::ShapeMismatch {
                expected: vec![indices.len()],
                actual: vec![values.len()],
                op: "from_sorted_linear",
            });
        }
        let total = shape.num_elements() as u64;
        if indices.last().is_some_and(|&l| l >= total) {
            return Err(TensorError::IndexOutOfBounds {
                index: shape.multi_index(*indices.last().unwrap() as usize % total.max(1) as usize),
                shape: dims.to_vec(),
            });
        }
        if indices.windows(2).any(|w| w[0] >= w[1]) {
            return Err(TensorError::ShapeMismatch {
                expected: vec![],
                actual: vec![],
                op: "from_sorted_linear (indices not strictly increasing)",
            });
        }
        Ok(Self::assemble(shape, indices, values))
    }

    /// The tensor shape.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Mode extents.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Tensor order.
    #[inline]
    pub fn order(&self) -> usize {
        self.shape.order()
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Fraction of cells that are stored: `nnz / Π I_n`.
    pub fn density(&self) -> f64 {
        let total = self.shape.num_elements();
        if total == 0 {
            0.0
        } else {
            self.nnz() as f64 / total as f64
        }
    }

    /// Returns the stored value at `index`, or `None` when the cell is null
    /// (i.e. the simulation was never run).
    pub fn get(&self, index: &[usize]) -> Option<f64> {
        self.shape.check_index(index).ok()?;
        let lin = self.shape.linear_index(index) as u64;
        self.indices
            .binary_search(&lin)
            .ok()
            .map(|pos| self.values[pos])
    }

    /// Iterates over `(multi-index, value)` pairs in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (Vec<usize>, f64)> + '_ {
        self.indices
            .iter()
            .zip(self.values.iter())
            .map(|(&lin, &v)| (self.shape.multi_index(lin as usize), v))
    }

    /// Iterates over raw `(linear index, value)` pairs.
    pub fn iter_linear(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.indices
            .iter()
            .zip(self.values.iter())
            .map(|(&l, &v)| (l, v))
    }

    /// Frobenius norm over the stored entries.
    pub fn frobenius_norm(&self) -> f64 {
        m2td_linalg::norm2(&self.values)
    }

    /// Materializes the tensor densely (nulls become 0). Intended for small
    /// shapes (tests, ground-truth comparison); errors on empty shapes.
    pub fn to_dense(&self) -> Result<DenseTensor> {
        let mut out = DenseTensor::zeros(self.dims());
        if out.num_elements() == 0 && self.nnz() > 0 {
            return Err(TensorError::EmptyTensor);
        }
        let data = out.as_mut_slice();
        for (&lin, &v) in self.indices.iter().zip(self.values.iter()) {
            data[lin as usize] = v;
        }
        Ok(out)
    }

    /// Builds a sparse tensor from the non-zero cells of a dense tensor.
    pub fn from_dense(dense: &DenseTensor) -> Self {
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for (lin, &v) in dense.as_slice().iter().enumerate() {
            if v != 0.0 {
                indices.push(lin as u64);
                values.push(v);
            }
        }
        Self::assemble(dense.shape().clone(), indices, values)
    }

    /// Mode-`n` matricization materialized densely
    /// (`I_n × Π_{m≠n} I_m`). Only for small tensors/tests — the pipeline
    /// itself uses [`Self::unfold_gram`].
    pub fn unfold(&self, mode: usize) -> Result<Matrix> {
        self.shape.check_mode(mode)?;
        let rows = self.shape.dim(mode);
        let cols = self.shape.unfold_cols(mode);
        let mut out = Matrix::zeros(rows, cols);
        let mut idx = vec![0usize; self.order()];
        for (&lin, &v) in self.indices.iter().zip(self.values.iter()) {
            self.shape.multi_index_into(lin as usize, &mut idx);
            out.set(idx[mode], self.shape.unfold_col_index(mode, &idx), v);
        }
        Ok(out)
    }

    /// Gram matrix of the mode-`n` matricization, `X₍ₙ₎ X₍ₙ₎ᵀ`
    /// (`I_n × I_n`), computed directly from the sparse entries without
    /// materializing the (enormous) unfolding.
    ///
    /// Entries are grouped by their unfolding column (the "rest index");
    /// each group contributes the outer product of its column vector.
    pub fn unfold_gram(&self, mode: usize) -> Result<Matrix> {
        self.shape.check_mode(mode)?;
        let _span = m2td_obs::span!("tensor.unfold_gram", mode = mode);
        let n = self.shape.dim(mode);
        let mut out = Matrix::zeros(n, n);

        // Group (mode index, value) by unfolding column. BTreeMap keeps
        // the accumulation order deterministic, so Gram matrices (and the
        // eigenvectors derived from them) are bit-identical across runs
        // and across the serial/distributed code paths.
        let mut cols: BTreeMap<u64, Vec<(u32, f64)>> = BTreeMap::new();
        let mut idx = vec![0usize; self.order()];
        for (&lin, &v) in self.indices.iter().zip(self.values.iter()) {
            self.shape.multi_index_into(lin as usize, &mut idx);
            let c = self.shape.unfold_col_index(mode, &idx) as u64;
            cols.entry(c).or_default().push((idx[mode] as u32, v));
        }
        for group in cols.values() {
            for &(i, vi) in group {
                for &(j, vj) in group {
                    if j >= i {
                        let cur = out.get(i as usize, j as usize);
                        out.set(i as usize, j as usize, cur + vi * vj);
                    }
                }
            }
        }
        // Mirror the upper triangle.
        for i in 0..n {
            for j in 0..i {
                let v = out.get(j, i);
                out.set(i, j, v);
            }
        }
        Ok(out)
    }

    /// Returns the mode-`mode` scatter index, building and caching it on
    /// first use. Callers must have validated `mode` already.
    pub(crate) fn scatter_index(&self, mode: usize) -> Arc<ModeScatterIndex> {
        let mut map = self.cache.per_mode.lock().unwrap();
        map.entry(mode)
            .or_insert_with(|| Arc::new(ModeScatterIndex::build(self, mode)))
            .clone()
    }

    /// Whether a scatter index for `mode` has already been built.
    pub(crate) fn has_scatter_index(&self, mode: usize) -> bool {
        self.cache.per_mode.lock().unwrap().contains_key(&mode)
    }
}

/// Lazily-built per-mode scatter indices, shared across clones.
#[derive(Debug, Default)]
struct ScatterCache {
    per_mode: Mutex<BTreeMap<usize, Arc<ModeScatterIndex>>>,
}

/// Mode-sorted view of a sparse tensor's entries for the TTM scatter
/// kernels.
///
/// An entry with linear index `lin` decomposes against mode `n` as
/// `lin = high·(stride·I_n) + i_n·stride + low` where `stride` is the
/// row-major stride of mode `n`; the output cells it touches in an
/// `X ×_n U` product all share the base `high·(stride·J) + low`. The
/// index groups entries by that `(high, low)` key — which is independent
/// of the output extent `J`, so one index serves every factor width —
/// with a *stable* sort, so within each group entries keep the original
/// stream order. Replaying a group sequentially therefore produces the
/// exact per-cell accumulation order of the serial entry-stream loop,
/// which is what makes the parallel scatter bitwise thread-invariant.
#[derive(Debug)]
pub(crate) struct ModeScatterIndex {
    /// Per group, the `high` part of the output base.
    highs: Vec<usize>,
    /// Per group, the `low` part of the output base (`low < stride`).
    lows: Vec<usize>,
    /// Half-open entry ranges: group `g` owns `entries[starts[g]..starts[g+1]]`.
    starts: Vec<usize>,
    /// `(i_n, value)` per entry, permuted so each group is contiguous and
    /// internally in original stream order.
    entries: Vec<(u32, f64)>,
    /// Row-major stride of the indexed mode (product of trailing extents).
    stride: usize,
}

impl ModeScatterIndex {
    fn build(x: &SparseTensor, mode: usize) -> Self {
        let dims = x.dims();
        let stride: usize = dims[mode + 1..].iter().product();
        let in_block = stride * dims[mode];
        let mut tagged: Vec<(usize, usize, u32, f64)> = Vec::with_capacity(x.nnz());
        for (&lin, &v) in x.indices.iter().zip(x.values.iter()) {
            let lin = lin as usize;
            let high = lin / in_block;
            let rest = lin % in_block;
            tagged.push((high, rest % stride, (rest / stride) as u32, v));
        }
        // Stable: ties (same output cell) keep stream order.
        tagged.sort_by_key(|&(h, l, _, _)| (h, l));
        let mut highs = Vec::new();
        let mut lows = Vec::new();
        let mut starts = vec![0usize];
        let mut entries = Vec::with_capacity(tagged.len());
        for (h, l, i_n, v) in tagged {
            if highs.last() != Some(&h) || lows.last() != Some(&l) {
                if !entries.is_empty() {
                    starts.push(entries.len());
                }
                highs.push(h);
                lows.push(l);
            }
            entries.push((i_n, v));
        }
        starts.push(entries.len());
        Self {
            highs,
            lows,
            starts,
            entries,
            stride,
        }
    }

    /// Number of distinct output cells (groups).
    #[inline]
    pub(crate) fn num_groups(&self) -> usize {
        self.highs.len()
    }

    /// The `(high, low)` base decomposition of group `g`.
    #[inline]
    pub(crate) fn group_key(&self, g: usize) -> (usize, usize) {
        (self.highs[g], self.lows[g])
    }

    /// The `(i_n, value)` entries of group `g`, in stream order.
    #[inline]
    pub(crate) fn group_entries(&self, g: usize) -> &[(u32, f64)] {
        &self.entries[self.starts[g]..self.starts[g + 1]]
    }

    /// Row-major stride of the indexed mode.
    #[inline]
    pub(crate) fn stride(&self) -> usize {
        self.stride
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SparseTensor {
        SparseTensor::from_entries(
            &[3, 4, 2],
            &[
                (vec![0, 0, 0], 1.0),
                (vec![1, 2, 0], -2.0),
                (vec![2, 3, 1], 3.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_get() {
        let t = sample();
        assert_eq!(t.nnz(), 3);
        assert_eq!(t.get(&[1, 2, 0]), Some(-2.0));
        assert_eq!(t.get(&[1, 2, 1]), None);
        assert_eq!(t.get(&[9, 9, 9]), None);
    }

    #[test]
    fn duplicate_entries_rejected_as_duplicate_entry() {
        // Regression: this used to be misreported as IndexOutOfBounds.
        let r = SparseTensor::from_entries(&[2, 2], &[(vec![0, 0], 1.0), (vec![0, 0], 2.0)]);
        match r {
            Err(TensorError::DuplicateEntry { index, shape }) => {
                assert_eq!(index, vec![0, 0]);
                assert_eq!(shape, vec![2, 2]);
            }
            other => panic!("expected DuplicateEntry, got {other:?}"),
        }
    }

    #[test]
    fn scatter_index_groups_cover_entries_in_stream_order() {
        let t = sample();
        for mode in 0..3 {
            let idx = t.scatter_index(mode);
            assert!(t.has_scatter_index(mode));
            let total: usize = (0..idx.num_groups())
                .map(|g| idx.group_entries(g).len())
                .sum();
            assert_eq!(total, t.nnz());
            // Group keys are strictly increasing lexicographically.
            for g in 1..idx.num_groups() {
                assert!(idx.group_key(g - 1) < idx.group_key(g));
            }
        }
        // Clones share the cache; equality ignores it.
        let c = t.clone();
        assert!(c.has_scatter_index(0));
        let fresh = sample();
        assert!(!fresh.has_scatter_index(0));
        assert_eq!(fresh, t);
    }

    #[test]
    fn out_of_bounds_rejected() {
        assert!(SparseTensor::from_entries(&[2, 2], &[(vec![2, 0], 1.0)]).is_err());
    }

    #[test]
    fn density_calculation() {
        let t = sample();
        assert!((t.density() - 3.0 / 24.0).abs() < 1e-15);
        assert_eq!(SparseTensor::empty(&[0]).density(), 0.0);
    }

    #[test]
    fn dense_round_trip() {
        let t = sample();
        let d = t.to_dense().unwrap();
        assert_eq!(d.get(&[2, 3, 1]), 3.0);
        assert_eq!(d.get(&[0, 1, 0]), 0.0);
        let back = SparseTensor::from_dense(&d);
        assert_eq!(back, t);
    }

    #[test]
    fn from_plan_runs_oracle_once_per_cell() {
        let mut calls = 0;
        let plan = vec![vec![0, 0], vec![1, 1], vec![0, 0]];
        let t = SparseTensor::from_plan(&[2, 2], &plan, |idx| {
            calls += 1;
            (idx[0] + idx[1]) as f64
        })
        .unwrap();
        assert_eq!(calls, 2, "duplicate plan entries must not re-run");
        assert_eq!(t.nnz(), 2);
        assert_eq!(t.get(&[1, 1]), Some(2.0));
    }

    #[test]
    fn sparse_unfold_matches_dense_unfold() {
        let t = sample();
        let d = t.to_dense().unwrap();
        for mode in 0..3 {
            let su = t.unfold(mode).unwrap();
            let du = d.unfold(mode).unwrap();
            assert_eq!(su, du, "unfold mismatch in mode {mode}");
        }
    }

    #[test]
    fn unfold_gram_matches_explicit_gram() {
        let t = sample();
        for mode in 0..3 {
            let g = t.unfold_gram(mode).unwrap();
            let m = t.unfold(mode).unwrap();
            let explicit = m.gram_rows();
            let diff = g.sub(&explicit).unwrap().frobenius_norm();
            assert!(diff < 1e-12, "gram mismatch in mode {mode}: {diff}");
        }
    }

    #[test]
    fn frobenius_norm_counts_stored_values() {
        let t =
            SparseTensor::from_entries(&[2, 2], &[(vec![0, 0], 3.0), (vec![1, 1], 4.0)]).unwrap();
        assert!((t.frobenius_norm() - 5.0).abs() < 1e-15);
    }

    #[test]
    fn iter_is_sorted_row_major() {
        let t = sample();
        let idxs: Vec<_> = t.iter().map(|(i, _)| i).collect();
        assert_eq!(idxs[0], vec![0, 0, 0]);
        assert_eq!(idxs[2], vec![2, 3, 1]);
    }

    #[test]
    fn empty_tensor_behaviour() {
        let t = SparseTensor::empty(&[4, 4]);
        assert_eq!(t.nnz(), 0);
        assert_eq!(t.frobenius_norm(), 0.0);
        let g = t.unfold_gram(0).unwrap();
        assert_eq!(g.frobenius_norm(), 0.0);
    }

    #[test]
    fn from_sorted_linear_validates() {
        let ok = SparseTensor::from_sorted_linear(&[2, 2], vec![0, 3], vec![1.0, 2.0]).unwrap();
        assert_eq!(ok.get(&[1, 1]), Some(2.0));
        // Length mismatch.
        assert!(SparseTensor::from_sorted_linear(&[2, 2], vec![0], vec![1.0, 2.0]).is_err());
        // Out of range.
        assert!(SparseTensor::from_sorted_linear(&[2, 2], vec![4], vec![1.0]).is_err());
        // Not strictly increasing.
        assert!(SparseTensor::from_sorted_linear(&[2, 2], vec![1, 1], vec![1.0, 2.0]).is_err());
        assert!(SparseTensor::from_sorted_linear(&[2, 2], vec![2, 1], vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn stored_zero_differs_from_null() {
        let t = SparseTensor::from_entries(&[2, 2], &[(vec![0, 1], 0.0)]).unwrap();
        assert_eq!(t.get(&[0, 1]), Some(0.0));
        assert_eq!(t.get(&[1, 0]), None);
        assert_eq!(t.nnz(), 1);
    }
}
