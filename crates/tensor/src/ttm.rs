//! Tensor-times-matrix (mode-`n`) products.
//!
//! `Y = X ×_n U` replaces mode `n` of `X` (extent `I_n`) with the row
//! dimension of `U`. In Tucker/HOSVD pipelines `U` is either a factor
//! matrix (reconstruction) or a transposed factor matrix (core recovery:
//! `G = X ×₁ U⁽¹⁾ᵀ ⋯ ×_N U⁽ᴺ⁾ᵀ`, the final step of Algorithms 1, 2 and 4
//! of the paper).

use crate::dense::DenseTensor;
use crate::error::TensorError;
use crate::sparse::SparseTensor;
use crate::workspace::Workspace;
use crate::Result;
use m2td_linalg::Matrix;

/// Dense mode-`n` product `X ×_n U` where `U` is `J × I_n`.
///
/// Computed as `Y₍ₙ₎ = U · X₍ₙ₎` followed by folding.
pub fn ttm_dense(x: &DenseTensor, mode: usize, u: &Matrix) -> Result<DenseTensor> {
    x.shape().check_mode(mode)?;
    if u.cols() != x.shape().dim(mode) {
        return Err(TensorError::ShapeMismatch {
            expected: vec![u.rows(), x.shape().dim(mode)],
            actual: vec![u.rows(), u.cols()],
            op: "ttm_dense",
        });
    }
    let unfolded = x.unfold(mode)?;
    let product = u.matmul(&unfolded)?;
    let out_dims: Vec<usize> = x
        .dims()
        .iter()
        .enumerate()
        .map(|(m, &d)| if m == mode { u.rows() } else { d })
        .collect();
    DenseTensor::fold(&product, mode, &out_dims)
}

/// [`ttm_dense`] drawing its unfold/product/fold buffers from a
/// [`Workspace`] — the reconstruction-side twin of
/// [`ttm_dense_transposed_ws`], used by Tucker recomposition and the
/// serve-engine slice path. Numerically identical to the allocating
/// variant: the kernels and accumulation orders are the same.
pub fn ttm_dense_ws(
    x: &DenseTensor,
    mode: usize,
    u: &Matrix,
    ws: &mut Workspace,
) -> Result<DenseTensor> {
    x.shape().check_mode(mode)?;
    if u.cols() != x.shape().dim(mode) {
        return Err(TensorError::ShapeMismatch {
            expected: vec![u.rows(), x.shape().dim(mode)],
            actual: vec![u.rows(), u.cols()],
            op: "ttm_dense",
        });
    }
    let mut unfolded = ws.take_matrix(0, 0);
    x.unfold_into(mode, &mut unfolded)?;
    let mut product = ws.take_matrix(0, 0);
    u.matmul_into(&unfolded, &mut product)?;
    ws.recycle_matrix(unfolded);
    let out_dims: Vec<usize> = x
        .dims()
        .iter()
        .enumerate()
        .map(|(m, &d)| if m == mode { u.rows() } else { d })
        .collect();
    // take(0): fold_into sizes the buffer itself, only capacity matters.
    let out = DenseTensor::fold_into(&product, mode, &out_dims, ws.take(0))?;
    ws.recycle_matrix(product);
    Ok(out)
}

/// Dense mode-`n` product with the transpose, `X ×_n Uᵀ`, where `U` is
/// `I_n × J`. Avoids materializing `Uᵀ`.
pub fn ttm_dense_transposed(x: &DenseTensor, mode: usize, u: &Matrix) -> Result<DenseTensor> {
    x.shape().check_mode(mode)?;
    if u.rows() != x.shape().dim(mode) {
        return Err(TensorError::ShapeMismatch {
            expected: vec![x.shape().dim(mode), u.cols()],
            actual: vec![u.rows(), u.cols()],
            op: "ttm_dense_transposed",
        });
    }
    let unfolded = x.unfold(mode)?;
    let product = u.transpose_matmul(&unfolded)?;
    let out_dims: Vec<usize> = x
        .dims()
        .iter()
        .enumerate()
        .map(|(m, &d)| if m == mode { u.cols() } else { d })
        .collect();
    DenseTensor::fold(&product, mode, &out_dims)
}

/// [`ttm_dense_transposed`] drawing its unfold/product/fold buffers from a
/// [`Workspace`], so a TTM chain (or a HOOI sweep loop) reuses the same
/// few allocations step after step. Numerically identical to the
/// allocating variant — the kernels and accumulation orders are the same.
pub fn ttm_dense_transposed_ws(
    x: &DenseTensor,
    mode: usize,
    u: &Matrix,
    ws: &mut Workspace,
) -> Result<DenseTensor> {
    x.shape().check_mode(mode)?;
    if u.rows() != x.shape().dim(mode) {
        return Err(TensorError::ShapeMismatch {
            expected: vec![x.shape().dim(mode), u.cols()],
            actual: vec![u.rows(), u.cols()],
            op: "ttm_dense_transposed",
        });
    }
    let mut unfolded = ws.take_matrix(0, 0);
    x.unfold_into(mode, &mut unfolded)?;
    let mut product = ws.take_matrix(0, 0);
    u.transpose_matmul_into(&unfolded, &mut product)?;
    ws.recycle_matrix(unfolded);
    let out_dims: Vec<usize> = x
        .dims()
        .iter()
        .enumerate()
        .map(|(m, &d)| if m == mode { u.cols() } else { d })
        .collect();
    // take(0): fold_into sizes the buffer itself, only capacity matters.
    let out = DenseTensor::fold_into(&product, mode, &out_dims, ws.take(0))?;
    ws.recycle_matrix(product);
    Ok(out)
}

/// Sparse mode-`n` product `X ×_n U` (`U` is `J × I_n`), producing a dense
/// tensor. Each stored entry scatters into `J` output cells, so the cost is
/// `O(nnz · J)` — independent of the full tensor size.
pub fn ttm_sparse(x: &SparseTensor, mode: usize, u: &Matrix) -> Result<DenseTensor> {
    x.shape().check_mode(mode)?;
    if u.cols() != x.shape().dim(mode) {
        return Err(TensorError::ShapeMismatch {
            expected: vec![u.rows(), x.shape().dim(mode)],
            actual: vec![u.rows(), u.cols()],
            op: "ttm_sparse",
        });
    }
    let _span = m2td_obs::span!("tensor.ttm_sparse_fwd", mode = mode);
    scatter_sparse(x, mode, u.rows(), |j, i_n| u.get(j, i_n))
}

/// Sparse mode-`n` product with the transpose, `X ×_n Uᵀ`, where `U` is
/// `I_n × J`. This is the first (and only sparse) step of the paper's core
/// recovery `G = J ×₁ U⁽¹⁾ᵀ ⋯`.
pub fn ttm_sparse_transposed(x: &SparseTensor, mode: usize, u: &Matrix) -> Result<DenseTensor> {
    x.shape().check_mode(mode)?;
    if u.rows() != x.shape().dim(mode) {
        return Err(TensorError::ShapeMismatch {
            expected: vec![x.shape().dim(mode), u.cols()],
            actual: vec![u.rows(), u.cols()],
            op: "ttm_sparse_transposed",
        });
    }
    let _span = m2td_obs::span!("tensor.ttm_sparse", mode = mode);
    scatter_sparse(x, mode, u.cols(), |j, i_n| u.get(i_n, j))
}

/// Entry count up to which an *uncached* scatter runs as a plain serial
/// stream loop: below this, building the mode-sorted index costs more
/// than it saves. (This replaces the retired `SCATTER_PAR_MIN_NNZ`
/// stream-replay kernel, which re-scanned the full entry stream once per
/// partition — `O(parts·nnz·J)` — and is now gone.)
const SCATTER_DIRECT_MAX_NNZ: usize = 1 << 10;

/// Minimum multiply-add count (`nnz · J`) before the mode-sorted scatter
/// fans out over the pool.
const SCATTER_PAR_MIN_WORK: usize = 1 << 12;

/// Shared scatter kernel: output mode-`n` extent is `j_dim`, with
/// coefficient `coef(j, i_n)` applied to each stored entry.
///
/// Because the input and output tensors differ only in the extent of
/// `mode`, the row-major stride of `mode` (the product of the trailing
/// extents) is the same in both, so an input linear index `lin`
/// decomposes as `lin = high·(stride·I_n) + i_n·stride + low` and the
/// touched output cells are `high·(stride·J) + j·stride + low`.
///
/// Two paths, chosen as follows:
///
/// * **Direct** — `nnz ≤ SCATTER_DIRECT_MAX_NNZ` and no mode-sorted index
///   is cached yet: one serial pass over the entry stream (the original
///   serial kernel, kept as the small-tensor fallback).
/// * **Mode-sorted** — otherwise: the tensor's cached mode-sorted index
///   (`ModeScatterIndex` in `sparse.rs`) groups entries by output cell
///   `(high, low)`; threads own contiguous, disjoint group ranges and each
///   group replays its entries in original stream order. Total work is
///   `O(nnz·J)` — the retired stream-replay path paid `O(parts·nnz·J)`.
///
/// Both paths accumulate into each output cell in entry-stream order, so
/// results are bitwise identical to each other and across thread counts.
fn scatter_sparse(
    x: &SparseTensor,
    mode: usize,
    j_dim: usize,
    coef: impl Fn(usize, usize) -> f64 + Sync,
) -> Result<DenseTensor> {
    let out_dims: Vec<usize> = x
        .dims()
        .iter()
        .enumerate()
        .map(|(m, &d)| if m == mode { j_dim } else { d })
        .collect();
    let mut out = DenseTensor::zeros(&out_dims);
    if x.nnz() == 0 || out.num_elements() == 0 {
        return Ok(out);
    }

    let stride: usize = x.dims()[mode + 1..].iter().product();
    let in_block = stride * x.dims()[mode];
    let out_block = stride * j_dim;
    let data = out.as_mut_slice();

    if x.nnz() <= SCATTER_DIRECT_MAX_NNZ && !x.has_scatter_index(mode) {
        for (lin, v) in x.iter_linear() {
            let lin = lin as usize;
            let high = lin / in_block;
            let rest = lin % in_block;
            let i_n = rest / stride;
            let low = rest % stride;
            let base = high * out_block + low;
            for j in 0..j_dim {
                data[base + j * stride] += coef(j, i_n) * v;
            }
        }
        return Ok(out);
    }

    let idx = x.scatter_index(mode);
    debug_assert_eq!(idx.stride(), stride);
    let groups = idx.num_groups();
    let parts = if x.nnz() * j_dim < SCATTER_PAR_MIN_WORK {
        1
    } else {
        m2td_par::max_threads().clamp(1, groups)
    };
    let sink = m2td_par::UnsafeSlice::new(data);
    m2td_par::par_for_each_index(parts, |part| {
        let g0 = part * groups / parts;
        let g1 = (part + 1) * groups / parts;
        for g in g0..g1 {
            let (high, low) = idx.group_key(g);
            let base = high * out_block + low;
            for &(i_n, v) in idx.group_entries(g) {
                for j in 0..j_dim {
                    // SAFETY: cell `base + j·stride` decomposes uniquely
                    // into (group, j) — `low < stride`, `j < j_dim` — and
                    // each group belongs to exactly one contiguous part,
                    // so concurrent writers are disjoint.
                    unsafe { sink.add_assign(base + j * stride, coef(j, i_n as usize) * v) };
                }
            }
        }
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_3x4x2() -> DenseTensor {
        DenseTensor::from_fn(&[3, 4, 2], |i| (1 + i[0] + 3 * i[1] + 12 * i[2]) as f64)
    }

    #[test]
    fn ttm_identity_is_noop() {
        let t = dense_3x4x2();
        for mode in 0..3 {
            let id = Matrix::identity(t.dims()[mode]);
            let y = ttm_dense(&t, mode, &id).unwrap();
            assert_eq!(y, t);
        }
    }

    #[test]
    fn ttm_known_small_case() {
        // 2x2 tensor (matrix): X ×_0 U == U * X.
        let x = DenseTensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let u = Matrix::from_rows(&[&[1.0, 1.0]]).unwrap(); // 1x2
        let y = ttm_dense(&x, 0, &u).unwrap();
        assert_eq!(y.dims(), &[1, 2]);
        assert_eq!(y.get(&[0, 0]), 4.0); // col sums
        assert_eq!(y.get(&[0, 1]), 6.0);
    }

    #[test]
    fn ttm_changes_only_target_mode() {
        let t = dense_3x4x2();
        let u = Matrix::from_fn(2, 4, |i, j| (i + j) as f64);
        let y = ttm_dense(&t, 1, &u).unwrap();
        assert_eq!(y.dims(), &[3, 2, 2]);
    }

    #[test]
    fn ttm_transposed_matches_explicit_transpose() {
        let t = dense_3x4x2();
        let u = Matrix::from_fn(4, 2, |i, j| ((i * 2 + j) as f64).sin());
        let fast = ttm_dense_transposed(&t, 1, &u).unwrap();
        let slow = ttm_dense(&t, 1, &u.transpose()).unwrap();
        let d = fast.sub(&slow).unwrap().frobenius_norm();
        assert!(d < 1e-12);
    }

    #[test]
    fn sparse_ttm_matches_dense_ttm() {
        let d = dense_3x4x2();
        let s = SparseTensor::from_dense(&d);
        let u = Matrix::from_fn(2, 3, |i, j| ((i + 2 * j) as f64).cos());
        let via_sparse = ttm_sparse(&s, 0, &u).unwrap();
        let via_dense = ttm_dense(&d, 0, &u).unwrap();
        let diff = via_sparse.sub(&via_dense).unwrap().frobenius_norm();
        assert!(diff < 1e-12, "sparse/dense TTM mismatch: {diff}");
    }

    #[test]
    fn sparse_ttm_transposed_matches_dense() {
        let d = dense_3x4x2();
        let s = SparseTensor::from_dense(&d);
        for mode in 0..3 {
            let u = Matrix::from_fn(d.dims()[mode], 2, |i, j| ((i * 3 + j) as f64).sin());
            let a = ttm_sparse_transposed(&s, mode, &u).unwrap();
            let b = ttm_dense_transposed(&d, mode, &u).unwrap();
            let diff = a.sub(&b).unwrap().frobenius_norm();
            assert!(diff < 1e-12, "mode {mode} mismatch: {diff}");
        }
    }

    #[test]
    fn sparse_ttm_on_truly_sparse_input() {
        let s = SparseTensor::from_entries(&[3, 3, 3], &[(vec![1, 1, 1], 2.0)]).unwrap();
        let u = Matrix::from_fn(2, 3, |i, j| (i * 3 + j) as f64);
        let y = ttm_sparse(&s, 2, &u).unwrap();
        assert_eq!(y.dims(), &[3, 3, 2]);
        // y[1,1,j] = u[j,1] * 2
        assert_eq!(y.get(&[1, 1, 0]), 2.0);
        assert_eq!(y.get(&[1, 1, 1]), 8.0);
        assert_eq!(y.get(&[0, 0, 0]), 0.0);
    }

    #[test]
    fn shape_mismatch_detected() {
        let t = dense_3x4x2();
        let s = SparseTensor::from_dense(&t);
        let u = Matrix::zeros(2, 5);
        assert!(ttm_dense(&t, 0, &u).is_err());
        assert!(ttm_dense_transposed(&t, 0, &u).is_err());
        assert!(ttm_sparse(&s, 0, &u).is_err());
        assert!(ttm_sparse_transposed(&s, 0, &u).is_err());
        assert!(ttm_dense(&t, 3, &u).is_err());
    }

    #[test]
    fn direct_and_mode_sorted_paths_are_bitwise_identical() {
        // Small tensor: the first call takes the direct stream loop; after
        // forcing the index, the same call takes the mode-sorted path.
        let d = DenseTensor::from_fn(&[5, 6, 4], |i| {
            ((i[0] * 11 + i[1] * 5 + i[2]) as f64 * 0.23).sin()
        });
        let s = SparseTensor::from_dense(&d);
        for mode in 0..3 {
            let u = Matrix::from_fn(d.dims()[mode], 3, |i, j| ((i * 3 + j) as f64).cos());
            assert!(s.nnz() <= SCATTER_DIRECT_MAX_NNZ);
            assert!(!s.has_scatter_index(mode));
            let direct = ttm_sparse_transposed(&s, mode, &u).unwrap();
            s.scatter_index(mode); // force the cached path
            let sorted = ttm_sparse_transposed(&s, mode, &u).unwrap();
            assert_eq!(direct, sorted, "path divergence in mode {mode}");
        }
    }

    #[test]
    fn ws_variant_is_bitwise_identical_to_allocating_variant() {
        let t = dense_3x4x2();
        let mut ws = crate::Workspace::new();
        for mode in 0..3 {
            let u = Matrix::from_fn(t.dims()[mode], 2, |i, j| ((i * 2 + j) as f64 * 0.4).sin());
            let plain = ttm_dense_transposed(&t, mode, &u).unwrap();
            let pooled = ttm_dense_transposed_ws(&t, mode, &u, &mut ws).unwrap();
            assert_eq!(plain, pooled, "ws variant diverged in mode {mode}");
            ws.recycle_tensor(pooled);
        }
        assert!(ws.reuse_hits() > 0, "workspace never reused a buffer");
        let bad = Matrix::zeros(9, 9);
        assert!(ttm_dense_transposed_ws(&t, 0, &bad, &mut ws).is_err());
    }

    #[test]
    fn sparse_scatter_bitwise_identical_across_thread_counts() {
        // 4096 stored entries clears SCATTER_DIRECT_MAX_NNZ, so the
        // mode-sorted parallel path actually runs at t > 1.
        let d = DenseTensor::from_fn(&[16, 16, 16], |i| {
            (1 + i[0] * 7 + i[1] * 3 + i[2]) as f64 * 0.5 - 100.0
        });
        let s = SparseTensor::from_dense(&d);
        for mode in 0..3 {
            let u = Matrix::from_fn(16, 5, |i, j| ((i * 5 + j) as f64).sin());
            m2td_par::set_max_threads(1);
            let serial = ttm_sparse_transposed(&s, mode, &u).unwrap();
            let serial_fwd = ttm_sparse(&s, mode, &u.transpose()).unwrap();
            for t in [2usize, 8] {
                m2td_par::set_max_threads(t);
                assert_eq!(ttm_sparse_transposed(&s, mode, &u).unwrap(), serial);
                assert_eq!(ttm_sparse(&s, mode, &u.transpose()).unwrap(), serial_fwd);
            }
            m2td_par::set_max_threads(0);
        }
    }

    #[test]
    fn ttm_composition_commutes_across_modes() {
        // (X ×_0 A) ×_2 B == (X ×_2 B) ×_0 A for distinct modes.
        let t = dense_3x4x2();
        let a = Matrix::from_fn(2, 3, |i, j| (i + j) as f64);
        let b = Matrix::from_fn(3, 2, |i, j| (i * j + 1) as f64);
        let ab = ttm_dense(&ttm_dense(&t, 0, &a).unwrap(), 2, &b).unwrap();
        let ba = ttm_dense(&ttm_dense(&t, 2, &b).unwrap(), 0, &a).unwrap();
        let d = ab.sub(&ba).unwrap().frobenius_norm();
        assert!(d < 1e-12);
    }
}
