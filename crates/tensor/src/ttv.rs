//! Tensor-times-vector (mode contraction).
//!
//! `Y = X ×̄_n v` contracts mode `n` against a vector, dropping that mode
//! from the result. Analysts use this to aggregate an ensemble tensor
//! along a mode — e.g. a time-weighted summary of the distance tensor, or
//! marginalizing a nuisance parameter.

use crate::dense::DenseTensor;
use crate::error::TensorError;
use crate::sparse::SparseTensor;
use crate::Result;

fn contracted_dims(dims: &[usize], mode: usize) -> Vec<usize> {
    dims.iter()
        .enumerate()
        .filter(|&(m, _)| m != mode)
        .map(|(_, &d)| d)
        .collect()
}

/// Dense mode-`n` vector contraction.
///
/// # Errors
///
/// * [`TensorError::InvalidMode`] for a bad mode.
/// * [`TensorError::ShapeMismatch`] when `v.len() != I_n`.
pub fn ttv_dense(x: &DenseTensor, mode: usize, v: &[f64]) -> Result<DenseTensor> {
    x.shape().check_mode(mode)?;
    if v.len() != x.dims()[mode] {
        return Err(TensorError::ShapeMismatch {
            expected: vec![x.dims()[mode]],
            actual: vec![v.len()],
            op: "ttv_dense",
        });
    }
    let out_dims = contracted_dims(x.dims(), mode);
    let mut out = DenseTensor::zeros(&out_dims);
    let out_shape = out.shape().clone();
    let data = out.as_mut_slice();
    let mut idx = vec![0usize; x.order()];
    let mut out_idx = vec![0usize; out_dims.len()];
    for (lin, &val) in x.as_slice().iter().enumerate() {
        x.shape().multi_index_into(lin, &mut idx);
        let coef = v[idx[mode]];
        if coef == 0.0 || val == 0.0 {
            continue;
        }
        let mut o = 0;
        for (m, &i) in idx.iter().enumerate() {
            if m != mode {
                out_idx[o] = i;
                o += 1;
            }
        }
        data[out_shape.linear_index(&out_idx)] += coef * val;
    }
    Ok(out)
}

/// Sparse mode-`n` vector contraction; cost `O(nnz)`.
///
/// # Errors
///
/// As [`ttv_dense`].
pub fn ttv_sparse(x: &SparseTensor, mode: usize, v: &[f64]) -> Result<DenseTensor> {
    x.shape().check_mode(mode)?;
    if v.len() != x.dims()[mode] {
        return Err(TensorError::ShapeMismatch {
            expected: vec![x.dims()[mode]],
            actual: vec![v.len()],
            op: "ttv_sparse",
        });
    }
    let out_dims = contracted_dims(x.dims(), mode);
    let mut out = DenseTensor::zeros(&out_dims);
    let out_shape = out.shape().clone();
    let data = out.as_mut_slice();
    let mut idx = vec![0usize; x.order()];
    let mut out_idx = vec![0usize; out_dims.len()];
    for (lin, val) in x.iter_linear() {
        x.shape().multi_index_into(lin as usize, &mut idx);
        let coef = v[idx[mode]];
        if coef == 0.0 {
            continue;
        }
        let mut o = 0;
        for (m, &i) in idx.iter().enumerate() {
            if m != mode {
                out_idx[o] = i;
                o += 1;
            }
        }
        data[out_shape.linear_index(&out_idx)] += coef * val;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tensor() -> DenseTensor {
        DenseTensor::from_fn(&[3, 4, 2], |i| (i[0] * 8 + i[1] * 2 + i[2] + 1) as f64)
    }

    #[test]
    fn contraction_with_ones_is_mode_sum() {
        let t = tensor();
        let y = ttv_dense(&t, 1, &[1.0; 4]).unwrap();
        assert_eq!(y.dims(), &[3, 2]);
        // Sum over j of t[i, j, k].
        let expected: f64 = (0..4).map(|j| t.get(&[1, j, 0])).sum();
        assert_eq!(y.get(&[1, 0]), expected);
    }

    #[test]
    fn contraction_with_basis_vector_extracts_slice() {
        let t = tensor();
        let mut e2 = vec![0.0; 4];
        e2[2] = 1.0;
        let y = ttv_dense(&t, 1, &e2).unwrap();
        for i in 0..3 {
            for k in 0..2 {
                assert_eq!(y.get(&[i, k]), t.get(&[i, 2, k]));
            }
        }
    }

    #[test]
    fn sparse_matches_dense() {
        let d = tensor();
        let s = SparseTensor::from_dense(&d);
        let v = [0.5, -1.0, 2.0];
        let yd = ttv_dense(&d, 0, &v).unwrap();
        let ys = ttv_sparse(&s, 0, &v).unwrap();
        let diff = yd.sub(&ys).unwrap().frobenius_norm();
        assert!(diff < 1e-12);
    }

    #[test]
    fn ttv_is_linear() {
        let t = tensor();
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [0.5, 0.0, -1.0, 2.0];
        let sum: Vec<f64> = a.iter().zip(b.iter()).map(|(x, y)| x + y).collect();
        let ya = ttv_dense(&t, 1, &a).unwrap();
        let yb = ttv_dense(&t, 1, &b).unwrap();
        let ysum = ttv_dense(&t, 1, &sum).unwrap();
        let diff = ya.add(&yb).unwrap().sub(&ysum).unwrap().frobenius_norm();
        assert!(diff < 1e-12);
    }

    #[test]
    fn errors_on_bad_inputs() {
        let t = tensor();
        assert!(ttv_dense(&t, 3, &[1.0]).is_err());
        assert!(ttv_dense(&t, 1, &[1.0; 3]).is_err());
        let s = SparseTensor::from_dense(&t);
        assert!(ttv_sparse(&s, 9, &[1.0]).is_err());
        assert!(ttv_sparse(&s, 0, &[1.0; 4]).is_err());
    }

    #[test]
    fn order_two_contraction_is_matvec() {
        let t = DenseTensor::from_fn(&[2, 3], |i| (i[0] * 3 + i[1]) as f64);
        let y = ttv_dense(&t, 1, &[1.0, 1.0, 1.0]).unwrap();
        assert_eq!(y.dims(), &[2]);
        assert_eq!(y.get(&[0]), 3.0);
        assert_eq!(y.get(&[1]), 12.0);
    }
}
