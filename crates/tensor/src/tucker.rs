//! Tucker decomposition container and reconstruction.

use crate::dense::DenseTensor;
use crate::error::TensorError;
use crate::ttm::ttm_dense_ws;
use crate::workspace::Workspace;
use crate::Result;
use m2td_linalg::Matrix;

/// A Tucker decomposition `[G; U⁽¹⁾, …, U⁽ᴺ⁾]` of an `N`-mode tensor.
///
/// `factors[n]` has shape `I_n × r_n` and the core `G` has shape
/// `r₁ × … × r_N`. Reconstruction computes
/// `X̃ = G ×₁ U⁽¹⁾ ×₂ U⁽²⁾ ⋯ ×_N U⁽ᴺ⁾` (Section III-B of the paper).
#[derive(Debug, Clone)]
pub struct TuckerDecomp {
    /// The dense core tensor (`r₁ × … × r_N`).
    pub core: DenseTensor,
    /// Per-mode factor matrices (`I_n × r_n`).
    pub factors: Vec<Matrix>,
}

impl TuckerDecomp {
    /// Creates a decomposition after validating that factor column counts
    /// match the core dimensions.
    pub fn new(core: DenseTensor, factors: Vec<Matrix>) -> Result<Self> {
        if factors.len() != core.order() {
            return Err(TensorError::WrongNumberOfRanks {
                supplied: factors.len(),
                order: core.order(),
            });
        }
        for (n, f) in factors.iter().enumerate() {
            if f.cols() != core.dims()[n] {
                return Err(TensorError::ShapeMismatch {
                    expected: vec![f.rows(), core.dims()[n]],
                    actual: vec![f.rows(), f.cols()],
                    op: "TuckerDecomp::new",
                });
            }
        }
        Ok(Self { core, factors })
    }

    /// The target ranks `(r₁, …, r_N)`.
    pub fn ranks(&self) -> &[usize] {
        self.core.dims()
    }

    /// The reconstructed tensor's mode extents `(I₁, …, I_N)`.
    pub fn output_dims(&self) -> Vec<usize> {
        self.factors.iter().map(|f| f.rows()).collect()
    }

    /// Recomposes the full tensor `X̃ = G ×₁ U⁽¹⁾ ⋯ ×_N U⁽ᴺ⁾`.
    pub fn reconstruct(&self) -> Result<DenseTensor> {
        self.reconstruct_ws(&mut Workspace::new())
    }

    /// [`Self::reconstruct`] drawing every intermediate's buffers from a
    /// caller-owned [`Workspace`], so repeated recompositions (serve
    /// refreshes, error sweeps) reuse the same few allocations.
    pub fn reconstruct_ws(&self, ws: &mut Workspace) -> Result<DenseTensor> {
        let mut acc = self.core.clone();
        for (mode, u) in self.factors.iter().enumerate() {
            let next = ttm_dense_ws(&acc, mode, u, ws)?;
            ws.recycle_tensor(acc);
            acc = next;
        }
        Ok(acc)
    }

    /// Evaluates a single reconstructed cell without materializing the
    /// full tensor: `X̃[i] = Σ_g G[g] · Π_n U⁽ⁿ⁾[i_n, g_n]`.
    ///
    /// Cost is `Π r_n` per cell — the right tool for in-fill queries
    /// ("how would this unsimulated configuration behave?") against a
    /// decomposition of a large ensemble.
    pub fn cell(&self, index: &[usize]) -> Result<f64> {
        self.check_cell_index(index)?;
        let core_shape = self.core.shape();
        let mut g_idx = vec![0usize; core_shape.order()];
        let mut acc = 0.0;
        for (lin, &g) in self.core.as_slice().iter().enumerate() {
            if g == 0.0 {
                continue;
            }
            core_shape.multi_index_into(lin, &mut g_idx);
            let mut term = g;
            for ((&i, f), &gn) in index.iter().zip(self.factors.iter()).zip(g_idx.iter()) {
                term *= f.get(i, gn);
            }
            acc += term;
        }
        Ok(acc)
    }

    /// Validates a reconstruction-space multi-index: every mode is checked
    /// before any allocation, so the error path costs nothing until an
    /// actual error is built.
    fn check_cell_index(&self, index: &[usize]) -> Result<()> {
        if index.len() != self.factors.len() {
            return Err(TensorError::WrongNumberOfRanks {
                supplied: index.len(),
                order: self.factors.len(),
            });
        }
        if index
            .iter()
            .zip(self.factors.iter())
            .any(|(&i, f)| i >= f.rows())
        {
            return Err(TensorError::IndexOutOfBounds {
                index: index.to_vec(),
                shape: self.output_dims(),
            });
        }
        Ok(())
    }

    /// Relative Frobenius reconstruction error
    /// `‖X̃ − Y‖_F / ‖Y‖_F` against a reference tensor `Y`.
    pub fn relative_error(&self, reference: &DenseTensor) -> Result<f64> {
        let recon = self.reconstruct()?;
        let diff_norm = recon.sub(reference)?.frobenius_norm();
        let denom = reference.frobenius_norm();
        if denom == 0.0 {
            return Ok(if diff_norm == 0.0 { 0.0 } else { f64::INFINITY });
        }
        Ok(diff_norm / denom)
    }

    /// The paper's accuracy metric (Section VII-D):
    /// `accuracy = 1 − ‖X̃ − Y‖_F / ‖Y‖_F`.
    pub fn accuracy(&self, reference: &DenseTensor) -> Result<f64> {
        Ok(1.0 - self.relative_error(reference)?)
    }

    /// Number of parameters stored by the decomposition (core + factors);
    /// the compression ratio against the dense tensor follows directly.
    pub fn num_parameters(&self) -> usize {
        self.core.num_elements()
            + self
                .factors
                .iter()
                .map(|f| f.rows() * f.cols())
                .sum::<usize>()
    }
}

/// Amortized single-cell evaluation over a [`TuckerDecomp`].
///
/// [`TuckerDecomp::cell`] decodes every nonzero core entry's multi-index
/// on each call and allocates a scratch index buffer per query — fine for
/// one-shot in-fill, wasteful on a serving hot path issuing thousands of
/// queries against the same decomposition. `CellEvaluator` hoists that
/// work out of the per-call path: it scans the core once, keeping only the
/// nonzero entries with their multi-indices pre-decoded, so each query is
/// a pure read-only walk (`Π r_n` multiplies worst case, fewer on sparse
/// cores) with no allocation. Evaluation accumulates terms in the same
/// linear-core order as `cell`, so results are bitwise identical to it —
/// and, because queries take `&self`, identical across any number of
/// concurrent query threads.
#[derive(Debug, Clone)]
pub struct CellEvaluator {
    decomp: TuckerDecomp,
    /// Values of the nonzero core entries, in linear-core order.
    values: Vec<f64>,
    /// Pre-decoded core multi-indices, flattened `order` per value.
    g_idx: Vec<usize>,
    /// Cached `decomp.output_dims()`.
    output_dims: Vec<usize>,
}

impl CellEvaluator {
    /// Builds the evaluator, pre-decoding every nonzero core entry.
    pub fn new(decomp: TuckerDecomp) -> Self {
        let core_shape = decomp.core.shape();
        let order = core_shape.order();
        let mut values = Vec::new();
        let mut g_idx = Vec::new();
        let mut scratch = vec![0usize; order];
        for (lin, &g) in decomp.core.as_slice().iter().enumerate() {
            if g == 0.0 {
                continue;
            }
            core_shape.multi_index_into(lin, &mut scratch);
            values.push(g);
            g_idx.extend_from_slice(&scratch);
        }
        let output_dims = decomp.output_dims();
        Self {
            decomp,
            values,
            g_idx,
            output_dims,
        }
    }

    /// The wrapped decomposition.
    pub fn decomp(&self) -> &TuckerDecomp {
        &self.decomp
    }

    /// The reconstructed tensor's mode extents.
    pub fn output_dims(&self) -> &[usize] {
        &self.output_dims
    }

    /// Number of nonzero core entries each query walks.
    pub fn num_terms(&self) -> usize {
        self.values.len()
    }

    /// Evaluates one reconstructed cell; bitwise identical to
    /// [`TuckerDecomp::cell`] on the wrapped decomposition.
    pub fn cell(&self, index: &[usize]) -> Result<f64> {
        self.decomp.check_cell_index(index)?;
        let order = self.decomp.factors.len();
        let mut acc = 0.0;
        for (t, &g) in self.values.iter().enumerate() {
            let g_idx = &self.g_idx[t * order..(t + 1) * order];
            let mut term = g;
            for ((&i, f), &gn) in index
                .iter()
                .zip(self.decomp.factors.iter())
                .zip(g_idx.iter())
            {
                term *= f.get(i, gn);
            }
            acc += term;
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_mismatches() {
        let core = DenseTensor::zeros(&[2, 2]);
        // Wrong factor count.
        assert!(TuckerDecomp::new(core.clone(), vec![Matrix::zeros(3, 2)]).is_err());
        // Wrong factor columns.
        assert!(
            TuckerDecomp::new(core.clone(), vec![Matrix::zeros(3, 2), Matrix::zeros(3, 3)])
                .is_err()
        );
        assert!(TuckerDecomp::new(core, vec![Matrix::zeros(3, 2), Matrix::zeros(3, 2)]).is_ok());
    }

    #[test]
    fn identity_factors_reconstruct_core() {
        let core = DenseTensor::from_fn(&[2, 3], |i| (i[0] * 3 + i[1]) as f64);
        let t = TuckerDecomp::new(core.clone(), vec![Matrix::identity(2), Matrix::identity(3)])
            .unwrap();
        assert_eq!(t.reconstruct().unwrap(), core);
        assert!(t.relative_error(&core).unwrap() < 1e-15);
        assert!((t.accuracy(&core).unwrap() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn rank_one_outer_product() {
        // core = [[2]], factors a=[1,2]ᵀ, b=[3,4,5]ᵀ => X = 2·a bᵀ.
        let core = DenseTensor::from_vec(&[1, 1], vec![2.0]).unwrap();
        let a = Matrix::from_rows(&[&[1.0], &[2.0]]).unwrap();
        let b = Matrix::from_rows(&[&[3.0], &[4.0], &[5.0]]).unwrap();
        let t = TuckerDecomp::new(core, vec![a, b]).unwrap();
        let x = t.reconstruct().unwrap();
        assert_eq!(x.dims(), &[2, 3]);
        assert_eq!(x.get(&[0, 0]), 6.0);
        assert_eq!(x.get(&[1, 2]), 20.0);
    }

    #[test]
    fn relative_error_zero_reference() {
        let core = DenseTensor::zeros(&[1, 1]);
        let t = TuckerDecomp::new(core, vec![Matrix::zeros(2, 1), Matrix::zeros(2, 1)]).unwrap();
        let zero_ref = DenseTensor::zeros(&[2, 2]);
        assert_eq!(t.relative_error(&zero_ref).unwrap(), 0.0);
    }

    #[test]
    fn cell_matches_full_reconstruction() {
        let core = DenseTensor::from_fn(&[2, 2], |i| (i[0] * 2 + i[1] + 1) as f64);
        let a = Matrix::from_fn(4, 2, |i, j| ((i + j) as f64 * 0.7).sin());
        let b = Matrix::from_fn(3, 2, |i, j| ((i * 2 + j) as f64 * 0.3).cos());
        let t = TuckerDecomp::new(core, vec![a, b]).unwrap();
        let full = t.reconstruct().unwrap();
        for i in 0..4 {
            for j in 0..3 {
                let direct = t.cell(&[i, j]).unwrap();
                assert!(
                    (direct - full.get(&[i, j])).abs() < 1e-12,
                    "cell ({i},{j}) mismatch"
                );
            }
        }
    }

    #[test]
    fn cell_validates_index() {
        let core = DenseTensor::zeros(&[1, 1]);
        let t = TuckerDecomp::new(core, vec![Matrix::zeros(2, 1), Matrix::zeros(2, 1)]).unwrap();
        assert!(t.cell(&[0]).is_err());
        assert!(t.cell(&[2, 0]).is_err());
        assert_eq!(t.cell(&[1, 1]).unwrap(), 0.0);
    }

    #[test]
    fn cell_evaluator_matches_cell_bitwise() {
        // A core with an exact zero exercises the nonzero-term filter.
        let core = DenseTensor::from_fn(&[2, 2], |i| {
            if i == [1, 0] {
                0.0
            } else {
                (i[0] * 2 + i[1] + 1) as f64
            }
        });
        let a = Matrix::from_fn(4, 2, |i, j| ((i + j) as f64 * 0.7).sin());
        let b = Matrix::from_fn(3, 2, |i, j| ((i * 2 + j) as f64 * 0.3).cos());
        let t = TuckerDecomp::new(core, vec![a, b]).unwrap();
        let eval = CellEvaluator::new(t.clone());
        assert_eq!(eval.num_terms(), 3);
        assert_eq!(eval.output_dims(), &[4, 3]);
        for i in 0..4 {
            for j in 0..3 {
                let direct = t.cell(&[i, j]).unwrap();
                let fast = eval.cell(&[i, j]).unwrap();
                assert_eq!(direct.to_bits(), fast.to_bits(), "cell ({i},{j})");
            }
        }
        // Validation carries over unchanged.
        assert!(matches!(
            eval.cell(&[0]),
            Err(TensorError::WrongNumberOfRanks { .. })
        ));
        assert!(matches!(
            eval.cell(&[4, 0]),
            Err(TensorError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn num_parameters_counts_core_and_factors() {
        let core = DenseTensor::zeros(&[2, 2]);
        let t = TuckerDecomp::new(core, vec![Matrix::zeros(5, 2), Matrix::zeros(6, 2)]).unwrap();
        assert_eq!(t.num_parameters(), 4 + 10 + 12);
        assert_eq!(t.output_dims(), vec![5, 6]);
        assert_eq!(t.ranks(), &[2, 2]);
    }
}
