//! Tucker decomposition container and reconstruction.

use crate::dense::DenseTensor;
use crate::error::TensorError;
use crate::ttm::ttm_dense;
use crate::Result;
use m2td_linalg::Matrix;

/// A Tucker decomposition `[G; U⁽¹⁾, …, U⁽ᴺ⁾]` of an `N`-mode tensor.
///
/// `factors[n]` has shape `I_n × r_n` and the core `G` has shape
/// `r₁ × … × r_N`. Reconstruction computes
/// `X̃ = G ×₁ U⁽¹⁾ ×₂ U⁽²⁾ ⋯ ×_N U⁽ᴺ⁾` (Section III-B of the paper).
#[derive(Debug, Clone)]
pub struct TuckerDecomp {
    /// The dense core tensor (`r₁ × … × r_N`).
    pub core: DenseTensor,
    /// Per-mode factor matrices (`I_n × r_n`).
    pub factors: Vec<Matrix>,
}

impl TuckerDecomp {
    /// Creates a decomposition after validating that factor column counts
    /// match the core dimensions.
    pub fn new(core: DenseTensor, factors: Vec<Matrix>) -> Result<Self> {
        if factors.len() != core.order() {
            return Err(TensorError::WrongNumberOfRanks {
                supplied: factors.len(),
                order: core.order(),
            });
        }
        for (n, f) in factors.iter().enumerate() {
            if f.cols() != core.dims()[n] {
                return Err(TensorError::ShapeMismatch {
                    expected: vec![f.rows(), core.dims()[n]],
                    actual: vec![f.rows(), f.cols()],
                    op: "TuckerDecomp::new",
                });
            }
        }
        Ok(Self { core, factors })
    }

    /// The target ranks `(r₁, …, r_N)`.
    pub fn ranks(&self) -> &[usize] {
        self.core.dims()
    }

    /// The reconstructed tensor's mode extents `(I₁, …, I_N)`.
    pub fn output_dims(&self) -> Vec<usize> {
        self.factors.iter().map(|f| f.rows()).collect()
    }

    /// Recomposes the full tensor `X̃ = G ×₁ U⁽¹⁾ ⋯ ×_N U⁽ᴺ⁾`.
    pub fn reconstruct(&self) -> Result<DenseTensor> {
        let mut acc = self.core.clone();
        for (mode, u) in self.factors.iter().enumerate() {
            acc = ttm_dense(&acc, mode, u)?;
        }
        Ok(acc)
    }

    /// Evaluates a single reconstructed cell without materializing the
    /// full tensor: `X̃[i] = Σ_g G[g] · Π_n U⁽ⁿ⁾[i_n, g_n]`.
    ///
    /// Cost is `Π r_n` per cell — the right tool for in-fill queries
    /// ("how would this unsimulated configuration behave?") against a
    /// decomposition of a large ensemble.
    pub fn cell(&self, index: &[usize]) -> Result<f64> {
        if index.len() != self.factors.len() {
            return Err(TensorError::WrongNumberOfRanks {
                supplied: index.len(),
                order: self.factors.len(),
            });
        }
        for (n, (&i, f)) in index.iter().zip(self.factors.iter()).enumerate() {
            if i >= f.rows() {
                return Err(TensorError::IndexOutOfBounds {
                    index: index.to_vec(),
                    shape: self.output_dims(),
                });
            }
            let _ = n;
        }
        let mut acc = 0.0;
        let core_shape = self.core.shape().clone();
        let mut g_idx = vec![0usize; core_shape.order()];
        for (lin, &g) in self.core.as_slice().iter().enumerate() {
            if g == 0.0 {
                continue;
            }
            core_shape.multi_index_into(lin, &mut g_idx);
            let mut term = g;
            for (n, (&i, f)) in index.iter().zip(self.factors.iter()).enumerate() {
                term *= f.get(i, g_idx[n]);
            }
            acc += term;
        }
        Ok(acc)
    }

    /// Relative Frobenius reconstruction error
    /// `‖X̃ − Y‖_F / ‖Y‖_F` against a reference tensor `Y`.
    pub fn relative_error(&self, reference: &DenseTensor) -> Result<f64> {
        let recon = self.reconstruct()?;
        let diff = recon.sub(reference)?;
        let denom = reference.frobenius_norm();
        if denom == 0.0 {
            return Ok(if diff.frobenius_norm() == 0.0 {
                0.0
            } else {
                f64::INFINITY
            });
        }
        Ok(diff.frobenius_norm() / denom)
    }

    /// The paper's accuracy metric (Section VII-D):
    /// `accuracy = 1 − ‖X̃ − Y‖_F / ‖Y‖_F`.
    pub fn accuracy(&self, reference: &DenseTensor) -> Result<f64> {
        Ok(1.0 - self.relative_error(reference)?)
    }

    /// Number of parameters stored by the decomposition (core + factors);
    /// the compression ratio against the dense tensor follows directly.
    pub fn num_parameters(&self) -> usize {
        self.core.num_elements()
            + self
                .factors
                .iter()
                .map(|f| f.rows() * f.cols())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_mismatches() {
        let core = DenseTensor::zeros(&[2, 2]);
        // Wrong factor count.
        assert!(TuckerDecomp::new(core.clone(), vec![Matrix::zeros(3, 2)]).is_err());
        // Wrong factor columns.
        assert!(
            TuckerDecomp::new(core.clone(), vec![Matrix::zeros(3, 2), Matrix::zeros(3, 3)])
                .is_err()
        );
        assert!(TuckerDecomp::new(core, vec![Matrix::zeros(3, 2), Matrix::zeros(3, 2)]).is_ok());
    }

    #[test]
    fn identity_factors_reconstruct_core() {
        let core = DenseTensor::from_fn(&[2, 3], |i| (i[0] * 3 + i[1]) as f64);
        let t = TuckerDecomp::new(core.clone(), vec![Matrix::identity(2), Matrix::identity(3)])
            .unwrap();
        assert_eq!(t.reconstruct().unwrap(), core);
        assert!(t.relative_error(&core).unwrap() < 1e-15);
        assert!((t.accuracy(&core).unwrap() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn rank_one_outer_product() {
        // core = [[2]], factors a=[1,2]ᵀ, b=[3,4,5]ᵀ => X = 2·a bᵀ.
        let core = DenseTensor::from_vec(&[1, 1], vec![2.0]).unwrap();
        let a = Matrix::from_rows(&[&[1.0], &[2.0]]).unwrap();
        let b = Matrix::from_rows(&[&[3.0], &[4.0], &[5.0]]).unwrap();
        let t = TuckerDecomp::new(core, vec![a, b]).unwrap();
        let x = t.reconstruct().unwrap();
        assert_eq!(x.dims(), &[2, 3]);
        assert_eq!(x.get(&[0, 0]), 6.0);
        assert_eq!(x.get(&[1, 2]), 20.0);
    }

    #[test]
    fn relative_error_zero_reference() {
        let core = DenseTensor::zeros(&[1, 1]);
        let t = TuckerDecomp::new(core, vec![Matrix::zeros(2, 1), Matrix::zeros(2, 1)]).unwrap();
        let zero_ref = DenseTensor::zeros(&[2, 2]);
        assert_eq!(t.relative_error(&zero_ref).unwrap(), 0.0);
    }

    #[test]
    fn cell_matches_full_reconstruction() {
        let core = DenseTensor::from_fn(&[2, 2], |i| (i[0] * 2 + i[1] + 1) as f64);
        let a = Matrix::from_fn(4, 2, |i, j| ((i + j) as f64 * 0.7).sin());
        let b = Matrix::from_fn(3, 2, |i, j| ((i * 2 + j) as f64 * 0.3).cos());
        let t = TuckerDecomp::new(core, vec![a, b]).unwrap();
        let full = t.reconstruct().unwrap();
        for i in 0..4 {
            for j in 0..3 {
                let direct = t.cell(&[i, j]).unwrap();
                assert!(
                    (direct - full.get(&[i, j])).abs() < 1e-12,
                    "cell ({i},{j}) mismatch"
                );
            }
        }
    }

    #[test]
    fn cell_validates_index() {
        let core = DenseTensor::zeros(&[1, 1]);
        let t = TuckerDecomp::new(core, vec![Matrix::zeros(2, 1), Matrix::zeros(2, 1)]).unwrap();
        assert!(t.cell(&[0]).is_err());
        assert!(t.cell(&[2, 0]).is_err());
        assert_eq!(t.cell(&[1, 1]).unwrap(), 0.0);
    }

    #[test]
    fn num_parameters_counts_core_and_factors() {
        let core = DenseTensor::zeros(&[2, 2]);
        let t = TuckerDecomp::new(core, vec![Matrix::zeros(5, 2), Matrix::zeros(6, 2)]).unwrap();
        assert_eq!(t.num_parameters(), 4 + 10 + 12);
        assert_eq!(t.output_dims(), vec![5, 6]);
        assert_eq!(t.ranks(), &[2, 2]);
    }
}
