//! Reusable buffer pool for TTM chains and HOOI sweeps.
//!
//! Every step of a core-recovery chain needs an unfold matrix, a product
//! matrix and a fold buffer; HOOI repeats the chain every sweep. Without
//! reuse that is three allocations per mode per sweep, each sized by an
//! intermediate tensor. [`Workspace`] keeps retired buffers and hands the
//! largest one back on the next request, so a chain settles into steady
//! state with zero allocator traffic after the first step.
//!
//! Buffers are plain `Vec<f64>`; [`Workspace::take`] returns them zeroed
//! (zeroing is cheap next to the matmuls they feed), so reuse can never
//! change a numerical result — the kernels see exactly the freshly
//! allocated state they would otherwise have.

use m2td_linalg::Matrix;

/// Retired buffers kept beyond this count are dropped (largest-first
/// retention), bounding the pool's memory to the few live intermediates a
/// chain actually cycles through.
const MAX_POOLED: usize = 8;

/// A pool of reusable `f64` buffers for tensor/matrix intermediates.
#[derive(Debug, Default)]
pub struct Workspace {
    pool: Vec<Vec<f64>>,
    takes: usize,
    hits: usize,
}

impl Workspace {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a zeroed buffer of length `len`, reusing the pooled buffer
    /// with the largest capacity when one is available.
    pub fn take(&mut self, len: usize) -> Vec<f64> {
        self.takes += 1;
        let best = (0..self.pool.len()).max_by_key(|&i| self.pool[i].capacity());
        match best {
            Some(i) => {
                self.hits += 1;
                let mut buf = self.pool.swap_remove(i);
                buf.clear();
                buf.resize(len, 0.0);
                buf
            }
            None => vec![0.0; len],
        }
    }

    /// Returns a zeroed `rows x cols` matrix backed by a pooled buffer.
    pub fn take_matrix(&mut self, rows: usize, cols: usize) -> Matrix {
        Matrix::from_vec(rows, cols, self.take(rows * cols))
            .expect("take(rows*cols) returns a buffer of exactly that length")
    }

    /// Returns a buffer to the pool for later reuse.
    pub fn recycle(&mut self, buf: Vec<f64>) {
        if buf.capacity() == 0 {
            return;
        }
        self.pool.push(buf);
        if self.pool.len() > MAX_POOLED {
            // Drop the smallest buffer: big intermediates are the ones
            // worth keeping.
            if let Some(i) = (0..self.pool.len()).min_by_key(|&i| self.pool[i].capacity()) {
                self.pool.swap_remove(i);
            }
        }
    }

    /// Recycles a matrix's backing buffer.
    pub fn recycle_matrix(&mut self, m: Matrix) {
        self.recycle(m.into_vec());
    }

    /// Recycles a dense tensor's backing buffer.
    pub fn recycle_tensor(&mut self, t: crate::DenseTensor) {
        self.recycle(t.into_vec());
    }

    /// Number of [`Self::take`] requests served from the pool.
    pub fn reuse_hits(&self) -> usize {
        self.hits
    }

    /// Total number of [`Self::take`] requests.
    pub fn takes(&self) -> usize {
        self.takes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_after_recycle_reuses_and_zeroes() {
        let mut ws = Workspace::new();
        let mut buf = ws.take(16);
        buf.iter_mut().for_each(|x| *x = 3.0);
        ws.recycle(buf);
        let again = ws.take(8);
        assert_eq!(again, vec![0.0; 8]);
        assert_eq!(ws.reuse_hits(), 1);
        assert_eq!(ws.takes(), 2);
    }

    #[test]
    fn take_matrix_round_trips_through_recycle() {
        let mut ws = Workspace::new();
        let m = ws.take_matrix(3, 4);
        assert_eq!(m.shape(), (3, 4));
        ws.recycle_matrix(m);
        let m2 = ws.take_matrix(2, 2);
        assert!(m2.as_slice().iter().all(|&x| x == 0.0));
        assert_eq!(ws.reuse_hits(), 1);
    }

    #[test]
    fn pool_is_bounded() {
        let mut ws = Workspace::new();
        for i in 1..=2 * MAX_POOLED {
            ws.recycle(vec![0.0; i]);
        }
        assert!(ws.pool.len() <= MAX_POOLED);
        // Largest buffers are retained.
        assert!(ws.pool.iter().any(|b| b.capacity() >= 2 * MAX_POOLED - 1));
    }
}
