//! Property-based tests of the tensor kernels on random tensors.

use m2td_linalg::Matrix;
use m2td_tensor::{
    hosvd_dense, hosvd_sparse, ttm_dense, ttm_dense_transposed, ttv_dense, DenseTensor,
    IncrementalEnsemble, Shape, SparseTensor,
};
use proptest::prelude::*;

/// Strategy: random tensor dims, 2–4 modes of extent 2–5.
fn dims_strategy() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(2usize..=5, 2..=4)
}

/// Strategy: a dense tensor with entries in ±2.
fn dense_strategy() -> impl Strategy<Value = DenseTensor> {
    dims_strategy().prop_flat_map(|dims| {
        let total = Shape::new(&dims).num_elements();
        prop::collection::vec(-2.0f64..2.0, total)
            .prop_map(move |data| DenseTensor::from_vec(&dims, data).expect("length matches"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn unfold_fold_round_trips_every_mode(t in dense_strategy()) {
        for mode in 0..t.order() {
            let m = t.unfold(mode).unwrap();
            let back = DenseTensor::fold(&m, mode, t.dims()).unwrap();
            prop_assert_eq!(&back, &t, "mode {} round trip failed", mode);
        }
    }

    #[test]
    fn unfold_preserves_frobenius_norm(t in dense_strategy()) {
        for mode in 0..t.order() {
            let m = t.unfold(mode).unwrap();
            prop_assert!((m.frobenius_norm() - t.frobenius_norm()).abs() < 1e-10);
        }
    }

    #[test]
    fn ttm_with_identity_is_identity(t in dense_strategy()) {
        for mode in 0..t.order() {
            let id = Matrix::identity(t.dims()[mode]);
            let y = ttm_dense(&t, mode, &id).unwrap();
            prop_assert_eq!(&y, &t);
        }
    }

    #[test]
    fn ttm_is_linear_in_the_matrix(t in dense_strategy(), alpha in -2.0f64..2.0) {
        let mode = 0;
        let d = t.dims()[mode];
        let u = Matrix::from_fn(2, d, |i, j| ((i * d + j) as f64 * 0.37).sin());
        let scaled = ttm_dense(&t, mode, &u.scaled(alpha)).unwrap();
        let then_scaled = ttm_dense(&t, mode, &u).unwrap().scaled(alpha);
        let diff = scaled.sub(&then_scaled).unwrap().frobenius_norm();
        prop_assert!(diff < 1e-10 * (1.0 + then_scaled.frobenius_norm()));
    }

    #[test]
    fn ttm_transpose_consistency(t in dense_strategy()) {
        for mode in 0..t.order() {
            let d = t.dims()[mode];
            let u = Matrix::from_fn(d, 2.min(d), |i, j| ((i + 3 * j) as f64 * 0.29).cos());
            let a = ttm_dense_transposed(&t, mode, &u).unwrap();
            let b = ttm_dense(&t, mode, &u.transpose()).unwrap();
            prop_assert!(a.sub(&b).unwrap().frobenius_norm() < 1e-10);
        }
    }

    #[test]
    fn ttv_equals_ttm_with_row_vector(t in dense_strategy()) {
        let mode = t.order() - 1;
        let d = t.dims()[mode];
        let v: Vec<f64> = (0..d).map(|i| (i as f64 * 0.61).sin() + 0.5).collect();
        let via_ttv = ttv_dense(&t, mode, &v).unwrap();
        let row = Matrix::from_vec(1, d, v.clone()).unwrap();
        let via_ttm = ttm_dense(&t, mode, &row).unwrap();
        // via_ttm keeps the contracted mode with extent 1.
        prop_assert_eq!(via_ttv.num_elements(), via_ttm.num_elements());
        for (a, b) in via_ttv.as_slice().iter().zip(via_ttm.as_slice().iter()) {
            prop_assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn hosvd_full_rank_is_exact_and_energy_preserving(t in dense_strategy()) {
        let ranks: Vec<usize> = t.dims().to_vec();
        let tucker = hosvd_dense(&t, &ranks).unwrap();
        prop_assert!(tucker.relative_error(&t).unwrap() < 1e-8);
        // Orthonormal factors preserve core energy.
        let core_norm = tucker.core.frobenius_norm();
        prop_assert!((core_norm - t.frobenius_norm()).abs() < 1e-8 * (1.0 + core_norm));
    }

    #[test]
    fn hosvd_truncation_error_monotone_in_rank(t in dense_strategy()) {
        let r_small: Vec<usize> = t.dims().iter().map(|_| 1usize).collect();
        let r_big: Vec<usize> = t.dims().iter().map(|&d| 2usize.min(d)).collect();
        let e_small = hosvd_dense(&t, &r_small).unwrap().relative_error(&t).unwrap();
        let e_big = hosvd_dense(&t, &r_big).unwrap().relative_error(&t).unwrap();
        prop_assert!(e_big <= e_small + 1e-9, "rank 2 error {e_big} > rank 1 error {e_small}");
    }

    #[test]
    fn sparse_and_dense_hosvd_agree(t in dense_strategy()) {
        let sparse = SparseTensor::from_dense(&t);
        prop_assume!(sparse.nnz() > 0);
        let ranks: Vec<usize> = t.dims().iter().map(|&d| 2usize.min(d)).collect();
        let ed = hosvd_dense(&t, &ranks).unwrap().relative_error(&t).unwrap();
        let es = hosvd_sparse(&sparse, &ranks).unwrap().relative_error(&t).unwrap();
        prop_assert!((ed - es).abs() < 1e-7, "dense {ed} vs sparse {es}");
    }

    #[test]
    fn incremental_grams_equal_batch_for_random_fills(t in dense_strategy(), keep in 1usize..5) {
        let mut inc = IncrementalEnsemble::new(t.dims());
        let shape = t.shape().clone();
        let mut count = 0;
        for (lin, &v) in t.as_slice().iter().enumerate() {
            if lin % keep == 0 && v != 0.0 {
                inc.add(&shape.multi_index(lin), v).unwrap();
                count += 1;
            }
        }
        prop_assume!(count > 0);
        let sparse = inc.to_sparse();
        for mode in 0..t.order() {
            let diff = inc
                .gram(mode)
                .unwrap()
                .sub(&sparse.unfold_gram(mode).unwrap())
                .unwrap()
                .frobenius_norm();
            prop_assert!(diff < 1e-10, "mode {mode} incremental gram drift {diff}");
        }
    }

    #[test]
    fn tucker_cell_agrees_with_reconstruction(t in dense_strategy()) {
        let ranks: Vec<usize> = t.dims().iter().map(|&d| 2usize.min(d)).collect();
        let tucker = hosvd_dense(&t, &ranks).unwrap();
        let full = tucker.reconstruct().unwrap();
        // Spot-check a quarter of the cells.
        let shape = t.shape().clone();
        for lin in (0..t.num_elements()).step_by(4) {
            let idx = shape.multi_index(lin);
            let direct = tucker.cell(&idx).unwrap();
            prop_assert!((direct - full.get(&idx)).abs() < 1e-9);
        }
    }
}
