//! Property-style tests of the tensor kernels on random tensors.
//!
//! The offline build has no `proptest`, so each property loops over a
//! fixed set of seeds and draws its inputs from the in-tree seeded RNG —
//! deterministic, shrink-free, but the same invariants.

use m2td_linalg::Matrix;
use m2td_tensor::{
    hosvd_dense, hosvd_sparse, ttm_dense, ttm_dense_transposed, ttm_sparse, ttm_sparse_transposed,
    ttv_dense, CoreOrdering, DenseTensor, IncrementalEnsemble, Shape, SparseTensor, TtmPlan,
    Workspace,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Mutex;

const CASES: u64 = 48;

/// `m2td_par::set_max_threads` is process-global; tests that sweep thread
/// counts serialize on this lock so they don't race each other.
static THREADS_LOCK: Mutex<()> = Mutex::new(());

/// Random tensor dims: 2–4 modes of extent 2–5.
fn rand_dims(rng: &mut StdRng) -> Vec<usize> {
    let order = rng.gen_range(2usize..5);
    (0..order).map(|_| rng.gen_range(2usize..6)).collect()
}

/// A dense tensor over random dims with entries in ±2.
fn rand_dense(rng: &mut StdRng) -> DenseTensor {
    let dims = rand_dims(rng);
    DenseTensor::from_fn(&dims, |_| rng.gen_range(-2.0..2.0))
}

#[test]
fn unfold_fold_round_trips_every_mode() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = rand_dense(&mut rng);
        for mode in 0..t.order() {
            let m = t.unfold(mode).unwrap();
            let back = DenseTensor::fold(&m, mode, t.dims()).unwrap();
            assert_eq!(&back, &t, "mode {mode} round trip failed");
        }
    }
}

#[test]
fn unfold_preserves_frobenius_norm() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = rand_dense(&mut rng);
        for mode in 0..t.order() {
            let m = t.unfold(mode).unwrap();
            assert!((m.frobenius_norm() - t.frobenius_norm()).abs() < 1e-10);
        }
    }
}

#[test]
fn ttm_with_identity_is_identity() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = rand_dense(&mut rng);
        for mode in 0..t.order() {
            let id = Matrix::identity(t.dims()[mode]);
            let y = ttm_dense(&t, mode, &id).unwrap();
            assert_eq!(&y, &t);
        }
    }
}

#[test]
fn ttm_is_linear_in_the_matrix() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = rand_dense(&mut rng);
        let alpha = rng.gen_range(-2.0..2.0);
        let mode = 0;
        let d = t.dims()[mode];
        let u = Matrix::from_fn(2, d, |i, j| ((i * d + j) as f64 * 0.37).sin());
        let scaled = ttm_dense(&t, mode, &u.scaled(alpha)).unwrap();
        let then_scaled = ttm_dense(&t, mode, &u).unwrap().scaled(alpha);
        let diff = scaled.sub(&then_scaled).unwrap().frobenius_norm();
        assert!(diff < 1e-10 * (1.0 + then_scaled.frobenius_norm()));
    }
}

#[test]
fn ttm_transpose_consistency() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = rand_dense(&mut rng);
        for mode in 0..t.order() {
            let d = t.dims()[mode];
            let u = Matrix::from_fn(d, 2.min(d), |i, j| ((i + 3 * j) as f64 * 0.29).cos());
            let a = ttm_dense_transposed(&t, mode, &u).unwrap();
            let b = ttm_dense(&t, mode, &u.transpose()).unwrap();
            assert!(a.sub(&b).unwrap().frobenius_norm() < 1e-10);
        }
    }
}

#[test]
fn ttv_equals_ttm_with_row_vector() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = rand_dense(&mut rng);
        let mode = t.order() - 1;
        let d = t.dims()[mode];
        let v: Vec<f64> = (0..d).map(|i| (i as f64 * 0.61).sin() + 0.5).collect();
        let via_ttv = ttv_dense(&t, mode, &v).unwrap();
        let row = Matrix::from_vec(1, d, v.clone()).unwrap();
        let via_ttm = ttm_dense(&t, mode, &row).unwrap();
        // via_ttm keeps the contracted mode with extent 1.
        assert_eq!(via_ttv.num_elements(), via_ttm.num_elements());
        for (a, b) in via_ttv.as_slice().iter().zip(via_ttm.as_slice().iter()) {
            assert!((a - b).abs() < 1e-10);
        }
    }
}

#[test]
fn hosvd_full_rank_is_exact_and_energy_preserving() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = rand_dense(&mut rng);
        let ranks: Vec<usize> = t.dims().to_vec();
        let tucker = hosvd_dense(&t, &ranks).unwrap();
        assert!(tucker.relative_error(&t).unwrap() < 1e-8);
        // Orthonormal factors preserve core energy.
        let core_norm = tucker.core.frobenius_norm();
        assert!((core_norm - t.frobenius_norm()).abs() < 1e-8 * (1.0 + core_norm));
    }
}

#[test]
fn hosvd_truncation_error_monotone_in_rank() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = rand_dense(&mut rng);
        let r_small: Vec<usize> = t.dims().iter().map(|_| 1usize).collect();
        let r_big: Vec<usize> = t.dims().iter().map(|&d| 2usize.min(d)).collect();
        let e_small = hosvd_dense(&t, &r_small)
            .unwrap()
            .relative_error(&t)
            .unwrap();
        let e_big = hosvd_dense(&t, &r_big).unwrap().relative_error(&t).unwrap();
        assert!(
            e_big <= e_small + 1e-9,
            "rank 2 error {e_big} > rank 1 error {e_small}"
        );
    }
}

#[test]
fn sparse_and_dense_hosvd_agree() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = rand_dense(&mut rng);
        let sparse = SparseTensor::from_dense(&t);
        if sparse.nnz() == 0 {
            continue;
        }
        let ranks: Vec<usize> = t.dims().iter().map(|&d| 2usize.min(d)).collect();
        let ed = hosvd_dense(&t, &ranks).unwrap().relative_error(&t).unwrap();
        let es = hosvd_sparse(&sparse, &ranks)
            .unwrap()
            .relative_error(&t)
            .unwrap();
        assert!((ed - es).abs() < 1e-7, "dense {ed} vs sparse {es}");
    }
}

#[test]
fn incremental_grams_equal_batch_for_random_fills() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = rand_dense(&mut rng);
        let keep = rng.gen_range(1usize..5);
        let mut inc = IncrementalEnsemble::new(t.dims());
        let shape = t.shape().clone();
        let mut count = 0;
        for (lin, &v) in t.as_slice().iter().enumerate() {
            if lin % keep == 0 && v != 0.0 {
                inc.add(&shape.multi_index(lin), v).unwrap();
                count += 1;
            }
        }
        if count == 0 {
            continue;
        }
        let sparse = inc.to_sparse();
        for mode in 0..t.order() {
            let diff = inc
                .gram(mode)
                .unwrap()
                .sub(&sparse.unfold_gram(mode).unwrap())
                .unwrap()
                .frobenius_norm();
            assert!(diff < 1e-10, "mode {mode} incremental gram drift {diff}");
        }
    }
}

#[test]
fn tucker_cell_agrees_with_reconstruction() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = rand_dense(&mut rng);
        let ranks: Vec<usize> = t.dims().iter().map(|&d| 2usize.min(d)).collect();
        let tucker = hosvd_dense(&t, &ranks).unwrap();
        let full = tucker.reconstruct().unwrap();
        // Spot-check a quarter of the cells.
        let shape = t.shape().clone();
        for lin in (0..t.num_elements()).step_by(4) {
            let idx = shape.multi_index(lin);
            let direct = tucker.cell(&idx).unwrap();
            assert!((direct - full.get(&idx)).abs() < 1e-9);
        }
    }
}

/// The partitioned sparse TTM scatter must match the serial path bitwise
/// on random tensors at every thread count; hosvd_sparse (whose per-mode
/// factors are computed concurrently) must stay within 1e-10 Frobenius.
#[test]
fn parallel_sparse_ttm_matches_serial_on_random_tensors() {
    let _guard = THREADS_LOCK.lock().unwrap();
    for seed in 0..16u64 {
        let mut rng = StdRng::seed_from_u64(2000 + seed);
        // 3 modes, extents up to 12, randomly thinned — keeps some cases
        // under and some over the internal parallel-scatter threshold.
        let dims: Vec<usize> = (0..3).map(|_| rng.gen_range(4usize..13)).collect();
        let keep = rng.gen_range(1usize..4);
        let shape = Shape::new(&dims);
        let entries: Vec<(Vec<usize>, f64)> = (0..shape.num_elements())
            .filter(|l| l % keep == 0)
            .map(|l| (shape.multi_index(l), rng.gen_range(-2.0..2.0)))
            .collect();
        let sparse = SparseTensor::from_entries(&dims, &entries).unwrap();
        let mode = rng.gen_range(0usize..3);
        let d = dims[mode];
        let u = Matrix::from_fn(d, 3.min(d), |i, j| ((i * 5 + j) as f64 * 0.23).sin());

        m2td_par::set_max_threads(1);
        let transposed = ttm_sparse_transposed(&sparse, mode, &u).unwrap();
        let plain = ttm_sparse(&sparse, mode, &u.transpose()).unwrap();
        let ranks: Vec<usize> = dims.iter().map(|&d| 2.min(d)).collect();
        let tucker_serial = hosvd_sparse(&sparse, &ranks).unwrap();

        for threads in [2usize, 8] {
            m2td_par::set_max_threads(threads);
            assert_eq!(
                ttm_sparse_transposed(&sparse, mode, &u).unwrap(),
                transposed,
                "ttm_sparse_transposed t={threads} seed={seed}"
            );
            assert_eq!(
                ttm_sparse(&sparse, mode, &u.transpose()).unwrap(),
                plain,
                "ttm_sparse t={threads} seed={seed}"
            );
            let tucker = hosvd_sparse(&sparse, &ranks).unwrap();
            let diff = tucker
                .core
                .sub(&tucker_serial.core)
                .unwrap()
                .frobenius_norm();
            assert!(
                diff < 1e-10,
                "hosvd core drift {diff} t={threads} seed={seed}"
            );
        }
        m2td_par::set_max_threads(0);
    }
}

/// The planned (compression-ratio-ordered, semi-sparse) TTM chain must
/// agree with the naive fixed-order dense chain to 1e-10 Frobenius on
/// random tensors, at both a moderate (~40%) and a low (~10%) fill — the
/// first exercises the mid-chain densify flip, the second keeps the chain
/// semi-sparse to the end.
#[test]
fn ttm_plan_matches_naive_fixed_order_dense_chain() {
    for seed in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(4000 + seed);
        let order = rng.gen_range(2usize..5);
        let dims: Vec<usize> = (0..order).map(|_| rng.gen_range(2usize..6)).collect();
        let ranks: Vec<usize> = dims.iter().map(|&d| rng.gen_range(1usize..d + 1)).collect();
        let keep = if seed % 2 == 0 { 10 } else { 5 } as usize; // ~10% / ~40% fill
        let shape = Shape::new(&dims);
        let dense = DenseTensor::from_fn(&dims, |idx| {
            let l = shape.linear_index(idx);
            if l % keep < keep.div_ceil(2) {
                rng.gen_range(-2.0..2.0)
            } else {
                0.0
            }
        });
        let sparse = SparseTensor::from_dense(&dense);
        let factors: Vec<Matrix> = dims
            .iter()
            .zip(ranks.iter())
            .enumerate()
            .map(|(n, (&d, &r))| {
                Matrix::from_fn(d, r, |i, j| ((i * (2 * n + 3) + 7 * j) as f64 * 0.13).sin())
            })
            .collect();

        // Naive reference: dense kernels in fixed natural mode order.
        let mut reference = dense.clone();
        for (mode, f) in factors.iter().enumerate() {
            reference = ttm_dense_transposed(&reference, mode, f).unwrap();
        }

        for ordering in [CoreOrdering::Natural, CoreOrdering::BestShrinkFirst] {
            let plan = TtmPlan::with_ordering(&dims, &ranks, ordering).unwrap();
            let mut ws = Workspace::new();
            let got = plan.execute_sparse(&sparse, &factors, &mut ws).unwrap();
            let diff = got.sub(&reference).unwrap().frobenius_norm();
            assert!(
                diff < 1e-10,
                "seed={seed} {ordering:?} plan chain drifted {diff} from naive chain"
            );
        }
    }
}

/// The mode-sorted scatter kernel and the semi-sparse plan executor must
/// be bitwise identical at every thread count. Tensors here exceed the
/// direct-path nnz cutoff, so the mode-sorted (cached-index) path runs.
#[test]
fn mode_sorted_scatter_is_bitwise_thread_invariant() {
    let _guard = THREADS_LOCK.lock().unwrap();
    for seed in 0..3u64 {
        let mut rng = StdRng::seed_from_u64(5000 + seed);
        let dims: Vec<usize> = (0..3).map(|_| rng.gen_range(12usize..17)).collect();
        let shape = Shape::new(&dims);
        // ~75% fill of a >=1728-cell tensor: nnz > 1024, well past the
        // direct-path cutoff.
        let entries: Vec<(Vec<usize>, f64)> = (0..shape.num_elements())
            .filter(|l| l % 4 != 0)
            .map(|l| (shape.multi_index(l), rng.gen_range(-2.0..2.0)))
            .collect();
        assert!(
            entries.len() > 1024,
            "test tensor must take the sorted path"
        );
        let sparse = SparseTensor::from_entries(&dims, &entries).unwrap();
        let mode = rng.gen_range(0usize..3);
        let u = Matrix::from_fn(dims[mode], 4, |i, j| ((i * 3 + j) as f64 * 0.41).cos());
        let ranks = vec![3usize; 3];
        let factors: Vec<Matrix> = dims
            .iter()
            .map(|&d| Matrix::from_fn(d, 3, |i, j| ((i + 11 * j) as f64 * 0.19).sin()))
            .collect();
        let plan = TtmPlan::with_ordering(&dims, &ranks, CoreOrdering::BestShrinkFirst).unwrap();

        m2td_par::set_max_threads(1);
        let scatter_serial = ttm_sparse_transposed(&sparse, mode, &u).unwrap();
        let core_serial = plan
            .execute_sparse(&sparse, &factors, &mut Workspace::new())
            .unwrap();

        for threads in [2usize, 8] {
            m2td_par::set_max_threads(threads);
            assert_eq!(
                ttm_sparse_transposed(&sparse, mode, &u).unwrap(),
                scatter_serial,
                "scatter not bitwise at t={threads} seed={seed}"
            );
            assert_eq!(
                plan.execute_sparse(&sparse, &factors, &mut Workspace::new())
                    .unwrap(),
                core_serial,
                "plan execution not bitwise at t={threads} seed={seed}"
            );
        }
        m2td_par::set_max_threads(0);
    }
}
