//! Bringing your own dynamical system to the M2TD pipeline.
//!
//! Everything in the library is generic over [`m2td::sim::EnsembleSystem`];
//! this example defines a *driven damped oscillator* from scratch —
//! `ẍ = −ω² x − 2ζω ẋ + A sin(Ω t)` — wires it into a workbench, and runs
//! the full partition-stitch pipeline against a conventional baseline.
//!
//! ```text
//! cargo run --release --example custom_system
//! ```

use m2td::core::{M2tdOptions, Workbench, WorkbenchConfig};
use m2td::sampling::RandomSampling;
use m2td::sim::{
    integrate, DynamicalSystem, EnsembleSystem, ParamAxis, ParameterSpace, TimeGrid, Trajectory,
};

/// Ensemble description: four tunable parameters.
struct DrivenOscillator;

/// Instantiated dynamics for one parameter combination.
struct Dynamics {
    omega: f64,
    zeta: f64,
    amplitude: f64,
    drive_freq: f64,
}

impl DynamicalSystem for Dynamics {
    fn dim(&self) -> usize {
        2
    }

    fn derivative(&self, t: f64, s: &[f64], out: &mut [f64]) {
        let (x, v) = (s[0], s[1]);
        out[0] = v;
        out[1] = -self.omega * self.omega * x - 2.0 * self.zeta * self.omega * v
            + self.amplitude * (self.drive_freq * t).sin();
    }
}

impl EnsembleSystem for DrivenOscillator {
    fn name(&self) -> &'static str {
        "driven_oscillator"
    }

    fn param_names(&self) -> Vec<&'static str> {
        vec!["omega", "zeta", "amplitude", "drive_freq"]
    }

    fn default_space(&self, resolution: usize) -> ParameterSpace {
        ParameterSpace::new(vec![
            ParamAxis::linspace("omega", 1.0, 4.0, resolution),
            ParamAxis::linspace("zeta", 0.05, 0.5, resolution),
            ParamAxis::linspace("amplitude", 0.5, 2.0, resolution),
            ParamAxis::linspace("drive_freq", 0.5, 4.0, resolution),
        ])
    }

    fn simulate(&self, params: &[f64], grid: &TimeGrid) -> Trajectory {
        let dynamics = Dynamics {
            omega: params[0],
            zeta: params[1],
            amplitude: params[2],
            drive_freq: params[3],
        };
        // Start at rest; the drive does the work.
        integrate(
            &dynamics,
            &[1.0, 0.0],
            0.0,
            grid.sample_dt(),
            grid.steps,
            grid.substeps,
        )
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = DrivenOscillator;
    let cfg = WorkbenchConfig {
        resolution: 8,
        time_steps: 8,
        t_end: 6.0,
        substeps: 24,
        rank: 3,
        seed: 61,
        noise_sigma: 0.0,
    };
    println!(
        "custom system '{}' with parameters {:?}",
        system.name(),
        system.param_names()
    );

    let bench = Workbench::new(&system, cfg)?;
    let pivot = bench.n_modes() - 1; // time
    let m2td = bench.run_m2td(pivot, M2tdOptions::default(), 1.0, 1.0)?;
    let budget = bench.m2td_budget(pivot, 1.0, 1.0)?;
    let random = bench.run_conventional(&RandomSampling, budget)?;

    println!("\nat a budget of {budget} ensemble cells:");
    println!("  {:<12} accuracy {:.4}", m2td.method, m2td.accuracy);
    println!("  {:<12} accuracy {:.2e}", random.method, random.accuracy);

    // Resonance check through the decomposition: the drive_freq factor's
    // leading pattern should vary most near resonance (drive ≈ omega).
    let (x1, x2, partition) = bench.subsystems(pivot, 1.0, 1.0, 1.0)?;
    let ranks: Vec<usize> = partition
        .join_modes()
        .iter()
        .map(|&m| 3usize.min(bench.full_dims()[m]))
        .collect();
    let d = m2td::core::m2td_decompose(&x1, &x2, partition.k(), &ranks, M2tdOptions::default())?;
    let pos = partition
        .join_modes()
        .iter()
        .position(|&m| m == 3)
        .expect("drive_freq is a mode");
    let f = &d.tucker.factors[pos];
    println!("\ndrive_freq factor row energies (higher = more distinctive dynamics):");
    for i in 0..f.rows() {
        let bar = "#".repeat((f.row_norm(i) * 40.0) as usize);
        println!("  drive_freq[{i}] {bar}");
    }
    Ok(())
}
