//! D-M2TD scaling study (the paper's Table III, as an application).
//!
//! Runs the three-phase distributed M2TD on the in-process MapReduce
//! engine, verifies the result against the serial implementation, and
//! projects the measured per-phase work onto modeled clusters of
//! increasing size.
//!
//! ```text
//! cargo run --release --example distributed_scaling
//! ```

use m2td::core::{m2td_decompose, M2tdOptions, Workbench, WorkbenchConfig};
use m2td::dist::{d_m2td, ClusterModel, MapReduce};
use m2td::sim::systems::DoublePendulum;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = DoublePendulum::default();
    let cfg = WorkbenchConfig {
        resolution: 12,
        time_steps: 12,
        t_end: 2.0,
        substeps: 16,
        rank: 4,
        seed: 31,
        noise_sigma: 0.0,
    };
    let bench = Workbench::new(&system, cfg)?;
    let (x1, x2, partition) = bench.subsystems(4, 1.0, 1.0, 1.0)?;
    let join_ranks: Vec<usize> = partition
        .join_modes()
        .iter()
        .map(|&m| 4usize.min(bench.full_dims()[m]))
        .collect();

    // Distributed run (2 in-process workers) + serial cross-check.
    let engine = MapReduce::new(2);
    let dist = d_m2td(
        &x1,
        &x2,
        partition.k(),
        &join_ranks,
        M2tdOptions::default(),
        &engine,
    )?;
    let serial = m2td_decompose(&x1, &x2, partition.k(), &join_ranks, M2tdOptions::default())?;
    let core_diff = dist.tucker.core.sub(&serial.tucker.core)?.frobenius_norm();
    println!("distributed vs serial core difference: {core_diff:.2e} (must be ~0)\n");

    println!("measured per-phase work:");
    for (name, p) in [
        ("phase1 sub-tensor decomposition", &dist.phase1),
        ("phase2 JE-stitching", &dist.phase2),
        ("phase3 core recovery", &dist.phase3),
    ] {
        println!(
            "  {name:<34} serial {:>8.4} s, {:>9} shuffled pairs, {:>6} groups",
            p.serial_secs, p.shuffle.shuffled_pairs, p.shuffle.reduce_groups
        );
    }

    println!("\nprojected phase times on modeled clusters (paper Table III shape):");
    println!(
        "{:>8}  {:>10} {:>10} {:>10} {:>10}",
        "servers", "phase1", "phase2", "phase3", "total"
    );
    for servers in [1usize, 2, 4, 9, 18, 36] {
        let model = ClusterModel::new(servers);
        let c1 = dist.phase1.on_cluster(&model).total();
        let c2 = dist.phase2.on_cluster(&model).total();
        let c3 = dist.phase3.on_cluster(&model).total();
        println!(
            "{servers:>8}  {c1:>10.4} {c2:>10.4} {c3:>10.4} {:>10.4}",
            c1 + c2 + c3
        );
    }
    println!("\n(phase 3 dominates and parallelizes with diminishing returns,");
    println!(" matching the paper's observation for Table III)");
    Ok(())
}
