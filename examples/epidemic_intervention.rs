//! Epidemic scenario analysis — the paper's motivating application.
//!
//! The introduction motivates simulation ensembles with epidemic-spread
//! decision making (STEM): decision makers sweep transmission, recovery,
//! seeding and intervention parameters over thousands of runs and need
//! post-simulation analytics to extract actionable patterns.
//!
//! This example builds an SIR ensemble whose cells measure the distance of
//! each scenario to an observed outbreak, decomposes it with M2TD, and
//! then *uses* the decomposition the way an analyst would:
//!
//! 1. score strategies against conventional sampling at the same budget;
//! 2. read the vaccination-mode factor to see how strongly the
//!    intervention knob separates scenario clusters;
//! 3. reconstruct the fiber of an unsimulated scenario (in-fill), i.e.
//!    predict how close an *unrun* configuration would track the observed
//!    outbreak.
//!
//! ```text
//! cargo run --release --example epidemic_intervention
//! ```

use m2td::core::{M2tdOptions, Workbench, WorkbenchConfig};
use m2td::sampling::RandomSampling;
use m2td::sim::systems::Sir;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = Sir;
    let cfg = WorkbenchConfig {
        resolution: 8,
        time_steps: 8,
        t_end: 60.0,
        substeps: 12,
        rank: 3,
        seed: 5,
        noise_sigma: 0.0,
    };
    let bench = Workbench::new(&system, cfg)?;
    let pivot_time = bench.n_modes() - 1;

    // 1. Strategy comparison at matched budget.
    let m2td = bench.run_m2td(pivot_time, M2tdOptions::default(), 1.0, 1.0)?;
    let budget = bench.m2td_budget(pivot_time, 1.0, 1.0)?;
    let random = bench.run_conventional(&RandomSampling, budget)?;
    println!("budget {budget} cells:");
    println!("  {:<12} accuracy {:.4}", m2td.method, m2td.accuracy);
    println!("  {:<12} accuracy {:.1e}", random.method, random.accuracy);

    // 2. Inspect the factor of the vaccination mode (mode 3, "nu").
    //    Re-run the decomposition through the low-level API to get the
    //    factors in join order: [t, beta, gamma, i0, nu].
    let (x1, x2, partition) = bench.subsystems(pivot_time, 1.0, 1.0, 1.0)?;
    let join_ranks: Vec<usize> = partition
        .join_modes()
        .iter()
        .map(|&m| 3usize.min(bench.full_dims()[m]))
        .collect();
    let decomp =
        m2td::core::m2td_decompose(&x1, &x2, partition.k(), &join_ranks, M2tdOptions::default())?;
    // Position of the original "nu" mode (3) inside the join order.
    let nu_pos = partition
        .join_modes()
        .iter()
        .position(|&m| m == 3)
        .expect("nu is a tensor mode");
    let nu_factor = &decomp.tucker.factors[nu_pos];
    println!("\nvaccination-mode factor (rows = nu grid values, cols = latent patterns):");
    for i in 0..nu_factor.rows() {
        let row: Vec<String> = (0..nu_factor.cols())
            .map(|j| format!("{:+.3}", nu_factor.get(i, j)))
            .collect();
        println!("  nu[{i}]  {}", row.join("  "));
    }
    println!(
        "  -> row energies: {:?}",
        (0..nu_factor.rows())
            .map(|i| (nu_factor.row_norm(i) * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );

    // 3. In-fill: predict the distance fiber of an unsimulated scenario
    //    and compare it to the ground truth.
    let recon = decomp
        .tucker
        .reconstruct()?
        .permute_modes(&partition.perm_join_to_natural())?;
    let truth = bench.ground_truth();
    let scenario = [6usize, 1, 5, 6]; // high beta, low gamma, high seeding, high nu
    println!("\npredicted vs true distance-to-observed for scenario {scenario:?}:");
    let mut idx = scenario.to_vec();
    idx.push(0);
    for t in 0..cfg.time_steps {
        idx[4] = t;
        println!(
            "  t{}  predicted {:>7.4}   true {:>7.4}",
            t,
            recon.get(&idx),
            truth.get(&idx)
        );
    }
    Ok(())
}
