//! Multi-way partitioning: how fine should you slice the system?
//!
//! The paper always splits into two sub-systems. This library generalizes
//! PF-partitioning to `S` groups (`m2td::sampling::MultiPartition` +
//! `m2td::core::m2td_decompose_multi`): with 4 free modes you can run
//! 2 groups of 2, or 4 groups of 1. Finer groups need exponentially fewer
//! simulations to reach full sub-space density, but fix more parameters
//! per run — this example measures the trade-off on the double pendulum
//! and reports accuracy per simulation cell.
//!
//! ```text
//! cargo run --release --example finer_partitions
//! ```

use m2td::core::{M2tdOptions, Workbench, WorkbenchConfig};
use m2td::sampling::RandomSampling;
use m2td::sim::systems::DoublePendulum;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = DoublePendulum::default();
    let cfg = WorkbenchConfig {
        resolution: 12,
        time_steps: 12,
        t_end: 2.0,
        substeps: 16,
        rank: 4,
        seed: 42,
        noise_sigma: 0.0,
    };
    let bench = Workbench::new(&system, cfg)?;
    let pivot = bench.n_modes() - 1;

    println!("partition granularity on the double pendulum (pivot = t):\n");
    println!(
        "{:>8}  {:>10}  {:>8}  {:>14}",
        "groups", "accuracy", "cells", "acc / 1k cells"
    );
    for groups in [2usize, 4] {
        let r = bench.run_m2td_multi(pivot, groups, M2tdOptions::default(), 1.0, 1.0)?;
        println!(
            "{:>8}  {:>10.4}  {:>8}  {:>14.3}",
            groups,
            r.accuracy,
            r.cells,
            r.accuracy / (r.cells as f64 / 1000.0)
        );
    }

    // What could conventional sampling do with the *fine* partition's tiny
    // budget?
    let fine = bench.run_m2td_multi(pivot, 4, M2tdOptions::default(), 1.0, 1.0)?;
    let random = bench.run_conventional(&RandomSampling, fine.cells)?;
    println!(
        "\nwith only {} cells: 4-way M2TD {:.4} vs random sampling {:.2e} — {}x",
        fine.cells,
        fine.accuracy,
        random.accuracy,
        (fine.accuracy / random.accuracy.max(f64::MIN_POSITIVE)) as u64
    );
    println!("\ntakeaway: finer partitions are the budget-constrained regime's tool —");
    println!("they concede accuracy to the 2-way split but dominate any conventional");
    println!("scheme at the same (much smaller) simulation budget.");
    Ok(())
}
