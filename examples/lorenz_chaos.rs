//! Chaos and decomposability: the Lorenz system stress test.
//!
//! The Lorenz system is "notable for having chaotic solutions for certain
//! initial conditions" (Section VII-A). Chaotic dynamics make the
//! ensemble tensor intrinsically high-rank in the time mode — this example
//! quantifies that by sweeping the target rank and the simulated horizon,
//! and contrasts join vs zero-join at a thinned budget.
//!
//! ```text
//! cargo run --release --example lorenz_chaos
//! ```

use m2td::core::{M2tdOptions, Workbench, WorkbenchConfig};
use m2td::sim::systems::Lorenz;
use m2td::stitch::StitchKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = Lorenz::default();

    // Rank sweep at a short (pre-chaotic) horizon.
    println!("rank sweep (t_end = 1.0, resolution 8):");
    for rank in [1usize, 2, 4, 6, 8] {
        let cfg = WorkbenchConfig {
            resolution: 8,
            time_steps: 8,
            t_end: 1.0,
            substeps: 24,
            rank,
            seed: 9,
            noise_sigma: 0.0,
        };
        let bench = Workbench::new(&system, cfg)?;
        let r = bench.run_m2td(4, M2tdOptions::default(), 1.0, 1.0)?;
        println!("  rank {rank}: accuracy {:.4}", r.accuracy);
    }

    // Horizon sweep: longer horizons reach the chaotic regime and the
    // fixed-rank decomposition captures less of the energy.
    println!("\nhorizon sweep (rank 4):");
    for t_end in [0.5, 1.0, 2.0, 4.0] {
        let cfg = WorkbenchConfig {
            resolution: 8,
            time_steps: 8,
            t_end,
            substeps: 48,
            rank: 4,
            seed: 9,
            noise_sigma: 0.0,
        };
        let bench = Workbench::new(&system, cfg)?;
        let r = bench.run_m2td(4, M2tdOptions::default(), 1.0, 1.0)?;
        println!("  t_end {t_end:>3}: accuracy {:.4}", r.accuracy);
    }

    // Thinned budget: zero-join rescues accuracy (Table V behaviour on a
    // chaotic system).
    println!("\nthinned budget (40% of cells, rank 4, t_end = 1.0):");
    let cfg = WorkbenchConfig {
        resolution: 8,
        time_steps: 8,
        t_end: 1.0,
        substeps: 24,
        rank: 4,
        seed: 9,
        noise_sigma: 0.0,
    };
    let bench = Workbench::new(&system, cfg)?;
    let join = bench.run_m2td_cells(4, M2tdOptions::default(), 1.0, 1.0, 0.4)?;
    let zero = bench.run_m2td_cells(
        4,
        M2tdOptions {
            stitch: StitchKind::ZeroJoin,
            ..M2tdOptions::default()
        },
        1.0,
        1.0,
        0.4,
    )?;
    println!(
        "  join      accuracy {:.4}  ({} join entries)",
        join.accuracy,
        join.stitch.as_ref().map(|s| s.join_nnz).unwrap_or(0)
    );
    println!(
        "  zero-join accuracy {:.4}  ({} join entries)",
        zero.accuracy,
        zero.stitch.as_ref().map(|s| s.join_nnz).unwrap_or(0)
    );
    Ok(())
}
