//! Pendulum parameter study: which pivot should an analyst choose?
//!
//! The paper's Table VIII shows that the pivot parameter affects accuracy
//! but every choice stays orders of magnitude ahead of conventional
//! sampling — so precise a-priori knowledge of the system is not needed.
//! This example sweeps all five pivots on the double pendulum, compares
//! the three M2TD variants, and prints a ranked recommendation.
//!
//! ```text
//! cargo run --release --example pendulum_study
//! ```

use m2td::core::{M2tdOptions, PivotCombine, Workbench, WorkbenchConfig};
use m2td::sampling::GridSampling;
use m2td::sim::systems::DoublePendulum;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = DoublePendulum::default();
    let cfg = WorkbenchConfig {
        resolution: 10,
        time_steps: 10,
        t_end: 2.0,
        substeps: 16,
        rank: 4,
        seed: 23,
        noise_sigma: 0.0,
    };
    let bench = Workbench::new(&system, cfg)?;
    let mode_names = bench.mode_names();

    println!("pivot sweep on the double pendulum (rank 4, full densities)\n");
    println!(
        "{:>6}  {:>10} {:>12} {:>12}  {:>8}",
        "pivot", "AVG", "CONCAT", "SELECT", "cells"
    );

    let mut ranking: Vec<(String, f64)> = Vec::new();
    for (pivot, pivot_name) in mode_names.iter().enumerate() {
        let mut best = f64::NEG_INFINITY;
        let mut row = Vec::new();
        let mut cells = 0;
        for combine in PivotCombine::all() {
            let opts = M2tdOptions {
                combine,
                ..M2tdOptions::default()
            };
            let r = bench.run_m2td(pivot, opts, 1.0, 1.0)?;
            best = best.max(r.accuracy);
            cells = r.cells;
            row.push(r.accuracy);
        }
        println!(
            "{:>6}  {:>10.4} {:>12.4} {:>12.4}  {:>8}",
            pivot_name, row[0], row[1], row[2], cells
        );
        ranking.push((pivot_name.clone(), best));
    }

    // The conventional reference point at matched budget.
    let budget = bench.m2td_budget(bench.n_modes() - 1, 1.0, 1.0)?;
    let grid = bench.run_conventional(&GridSampling, budget)?;
    println!(
        "\nbest conventional scheme (grid) at the same budget: {:.2e}",
        grid.accuracy
    );

    ranking.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\npivot recommendation (best variant per pivot):");
    for (i, (name, acc)) in ranking.iter().enumerate() {
        println!(
            "  {}. pivot {:<6} accuracy {:.4}  ({:.0}x over grid)",
            i + 1,
            name,
            acc,
            acc / grid.accuracy.max(f64::MIN_POSITIVE)
        );
    }
    Ok(())
}
