//! Quickstart: reproduce the paper's headline result in ~30 lines.
//!
//! Builds a small double-pendulum ensemble, runs the M2TD-SELECT pipeline
//! and a conventional random-sampling baseline at the same simulation
//! budget, and prints both accuracies.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use m2td::core::{M2tdOptions, Workbench, WorkbenchConfig};
use m2td::sampling::RandomSampling;
use m2td::sim::systems::DoublePendulum;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 5-mode ensemble tensor: phi1 x m1 x phi2 x m2 x time, 8 values per
    // mode. The workbench materializes the full ground-truth tensor so we
    // can score strategies with the paper's accuracy metric.
    let system = DoublePendulum::default();
    let cfg = WorkbenchConfig {
        resolution: 8,
        time_steps: 8,
        t_end: 2.0,
        substeps: 16,
        rank: 4,
        seed: 7,
        noise_sigma: 0.0,
    };
    let bench = Workbench::new(&system, cfg)?;

    // M2TD: PF-partition on the time pivot, full sub-ensemble densities,
    // SELECT combination (the paper's best variant).
    let pivot_time = bench.n_modes() - 1;
    let m2td = bench.run_m2td(pivot_time, M2tdOptions::default(), 1.0, 1.0)?;

    // Conventional baseline at the same cell budget.
    let budget = bench.m2td_budget(pivot_time, 1.0, 1.0)?;
    let random = bench.run_conventional(&RandomSampling, budget)?;

    println!("simulation budget: {budget} ensemble cells");
    println!(
        "{:<14} accuracy = {:>8.4}   (decomposed in {:.1} ms)",
        m2td.method,
        m2td.accuracy,
        m2td.decompose_secs * 1e3
    );
    println!(
        "{:<14} accuracy = {:>8.1e}   (decomposed in {:.1} ms)",
        random.method,
        random.accuracy,
        random.decompose_secs * 1e3
    );
    println!(
        "M2TD is {:.0}x more accurate at the same budget",
        m2td.accuracy / random.accuracy.max(f64::MIN_POSITIVE)
    );
    Ok(())
}
