//! A resident serving session over a simulated ensemble.
//!
//! The main pipeline decomposes once and reconstructs once. This example
//! runs the serving regime instead: a [`m2td::serve::ServeEngine`] stays
//! resident while simulation results stream in one cell at a time, its
//! model refreshes every `staleness` absorbed cells (from running Gram
//! matrices — no re-decomposition from scratch), and in-fill queries are
//! answered for cells that were never simulated, including whole-slice
//! queries through the batched TTM path.
//!
//! ```text
//! cargo run --release --example serve_queries
//! ```

use m2td::core::{Workbench, WorkbenchConfig};
use m2td::prelude::*;
use m2td::sim::systems::DoublePendulum;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = DoublePendulum::default();
    let cfg = WorkbenchConfig {
        resolution: 8,
        time_steps: 10,
        t_end: 2.0,
        substeps: 16,
        rank: 4,
        seed: 77,
        noise_sigma: 0.0,
    };
    let bench = Workbench::new(&system, cfg)?;
    let pivot = bench.n_modes() - 1;
    let (x1_full, _, _) = bench.subsystems(pivot, 1.0, 1.0, 1.0)?;
    let dims = x1_full.dims().to_vec();
    let ranks: Vec<usize> = dims.iter().map(|&d| 4usize.min(d)).collect();

    // Stream 60% of the simulated cells into the engine in random order;
    // hold the rest out as query targets with known ground truth.
    let mut pool: Vec<(Vec<usize>, f64)> = x1_full.iter().collect();
    pool.shuffle(&mut rand::rngs::StdRng::seed_from_u64(cfg.seed));
    let absorbed_count = pool.len() * 6 / 10;
    let (stream, held_out) = pool.split_at(absorbed_count);

    let engine = ServeEngine::new(ServeConfig::default().with_staleness(200));
    engine.register("pendulum", &dims, &ranks)?;
    let t0 = Instant::now();
    let mut refreshes = 0;
    for (idx, v) in stream {
        if engine.absorb("pendulum", idx, *v)?.refreshed {
            refreshes += 1;
        }
    }
    let report = engine.refresh("pendulum")?;
    println!(
        "absorbed {} cells in {:.1} ms ({} automatic refreshes); model v{} serves ranks {:?}",
        stream.len(),
        t0.elapsed().as_secs_f64() * 1e3,
        refreshes,
        report.version,
        report.ranks(),
    );

    // In-fill the held-out cells and score against the simulation truth.
    let t1 = Instant::now();
    let mut err_sq = 0.0;
    let mut truth_sq = 0.0;
    for (idx, truth) in held_out {
        let predicted = engine.query_cell("pendulum", idx)?;
        err_sq += (predicted - truth).powi(2);
        truth_sq += truth * truth;
    }
    let elapsed = t1.elapsed().as_secs_f64();
    println!(
        "in-filled {} held-out cells in {:.1} ms ({:.0} queries/sec), \
         relative error {:.3e}",
        held_out.len(),
        elapsed * 1e3,
        held_out.len() as f64 / elapsed.max(1e-12),
        (err_sq / truth_sq.max(f64::MIN_POSITIVE)).sqrt(),
    );

    // A slice query answers a whole hyperplane in one batched TTM chain.
    let slice = engine.query_slice("pendulum", 0, dims[0] / 2)?;
    let peak = slice.as_slice().iter().fold(0.0f64, |m, v| m.max(v.abs()));
    println!(
        "slice query (mode 0, index {}): {} predicted cells, peak |value| {:.3e}",
        dims[0] / 2,
        slice.as_slice().len(),
        peak,
    );

    let stats = engine.stats("pendulum")?;
    println!(
        "resident: {} cells, model v{}, {} pending until the next refresh window",
        stats.nnz, stats.model_version, stats.pending,
    );
    Ok(())
}
