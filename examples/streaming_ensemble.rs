//! Single-run (incremental) ensemble allocation.
//!
//! The paper's related work contrasts *multiple-run* design (sample the
//! whole budget up front — the main pipeline here) with *single-run
//! replication*, where simulations are allocated one wave at a time and
//! each result informs the next allocation. This example runs that regime:
//! the two PF sub-ensembles grow in waves through
//! [`m2td::tensor::IncrementalEnsemble`] (whose per-mode Gram matrices are
//! updated in place on every insertion), and after every wave the M2TD
//! decomposition is refreshed and scored.
//!
//! ```text
//! cargo run --release --example streaming_ensemble
//! ```

use m2td::core::{M2tdOptions, Workbench, WorkbenchConfig};
use m2td::sim::systems::DoublePendulum;
use m2td::stitch::StitchKind;
use m2td::tensor::IncrementalEnsemble;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = DoublePendulum::default();
    let cfg = WorkbenchConfig {
        resolution: 10,
        time_steps: 10,
        t_end: 2.0,
        substeps: 16,
        rank: 4,
        seed: 77,
        noise_sigma: 0.0,
    };
    let bench = Workbench::new(&system, cfg)?;
    let pivot = bench.n_modes() - 1;

    // The *full* sub-ensembles, used as the pool we allocate from.
    let (x1_full, x2_full, partition) = bench.subsystems(pivot, 1.0, 1.0, 1.0)?;
    let join_ranks: Vec<usize> = partition
        .join_modes()
        .iter()
        .map(|&m| 4usize.min(bench.full_dims()[m]))
        .collect();

    // Shuffle each pool into a random allocation order.
    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
    let mut pool1: Vec<(Vec<usize>, f64)> = x1_full.iter().collect();
    let mut pool2: Vec<(Vec<usize>, f64)> = x2_full.iter().collect();
    pool1.shuffle(&mut rng);
    pool2.shuffle(&mut rng);

    let mut inc1 = IncrementalEnsemble::new(x1_full.dims());
    let mut inc2 = IncrementalEnsemble::new(x2_full.dims());

    println!("incremental allocation on the double pendulum (pivot = t):\n");
    println!(
        "{:>6}  {:>9}  {:>10}  {:>12}",
        "wave", "cells", "density", "accuracy"
    );

    let waves = 5;
    let per_wave1 = pool1.len().div_ceil(waves);
    let per_wave2 = pool2.len().div_ceil(waves);
    for wave in 1..=waves {
        for (idx, v) in pool1.drain(..per_wave1.min(pool1.len())) {
            inc1.add(&idx, v)?;
        }
        for (idx, v) in pool2.drain(..per_wave2.min(pool2.len())) {
            inc2.add(&idx, v)?;
        }
        // Decompose the current snapshot. Zero-join compensates for the
        // partial coverage within each sub-ensemble.
        let x1 = inc1.to_sparse();
        let x2 = inc2.to_sparse();
        let opts = M2tdOptions {
            stitch: StitchKind::ZeroJoin,
            ..M2tdOptions::default()
        };
        let d = m2td::core::m2td_decompose(&x1, &x2, partition.k(), &join_ranks, opts)?;
        let acc = bench.accuracy_join_order(&d.tucker, &partition)?;
        println!(
            "{:>6}  {:>9}  {:>10.3}  {:>12.4}",
            wave,
            inc1.nnz() + inc2.nnz(),
            inc1.density(),
            acc
        );
    }

    println!("\nthe running Gram matrices are maintained incrementally, so the");
    println!("factor refresh after each wave costs O(new cells), not O(ensemble).");
    Ok(())
}
