//! # m2td — Multi-Task Tensor Decomposition for Sparse Ensemble Simulations
//!
//! Umbrella crate re-exporting the whole workspace. See the README for the
//! architecture overview and DESIGN.md for the paper-to-module map.
//!
//! The typical entry point is [`core::Workbench`], which wires a dynamical
//! system ([`sim`]), a sampling scheme ([`sampling`]), JE-stitching
//! ([`stitch`]) and an M2TD decomposition strategy ([`core`]) into a single
//! scored experiment:
//!
//! ```
//! use m2td::prelude::*;
//! use m2td::sim::systems::Sir;
//!
//! let system = Sir;
//! let cfg = WorkbenchConfig {
//!     resolution: 4,
//!     time_steps: 4,
//!     t_end: 40.0,
//!     substeps: 8,
//!     rank: 2,
//!     seed: 1,
//!     noise_sigma: 0.0,
//! };
//! let bench = Workbench::new(&system, cfg)?;
//! let report = bench.run_m2td(4, M2tdOptions::default(), 1.0, 1.0)?;
//! assert!(report.accuracy > 0.0);
//! # Ok::<(), m2td::core::CoreError>(())
//! ```

pub use m2td_core as core;
pub use m2td_dist as dist;
pub use m2td_fault as fault;
pub use m2td_guard as guard;
pub use m2td_json as json;
pub use m2td_linalg as linalg;
pub use m2td_obs as obs;
pub use m2td_par as par;
pub use m2td_sampling as sampling;
pub use m2td_serve as serve;
pub use m2td_sim as sim;
pub use m2td_sketch as sketch;
pub use m2td_stitch as stitch;
pub use m2td_tensor as tensor;

/// Convenience prelude importing the most common types.
pub mod prelude {
    pub use m2td_core::{
        m2td_decompose, M2tdOptions, PivotCombine, RunReport, SimFaultPolicy, Workbench,
        WorkbenchConfig,
    };
    pub use m2td_fault::{FaultPlan, RetryPolicy};
    pub use m2td_linalg::Matrix;
    pub use m2td_sampling::{PfPartition, SamplingScheme};
    pub use m2td_serve::{ServeConfig, ServeEngine};
    pub use m2td_sim::{EnsembleBuilder, EnsembleSystem, ParameterSpace, TimeGrid};
    pub use m2td_sketch::{SketchConfig, SketchPolicy};
    pub use m2td_stitch::{stitch, StitchKind};
    pub use m2td_tensor::{DenseTensor, SparseTensor, TuckerDecomp};
}
