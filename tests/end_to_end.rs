//! Cross-crate integration tests: whole pipelines through the umbrella
//! crate's public API, asserting the paper's qualitative results at small
//! scale.

use m2td::core::{
    m2td_decompose, CoreProjection, M2tdOptions, PivotCombine, Workbench, WorkbenchConfig,
};
use m2td::dist::{d_m2td, ClusterModel, MapReduce};
use m2td::sampling::{GridSampling, RandomSampling, SamplingScheme, SliceSampling};
use m2td::sim::systems::{DoublePendulum, Lorenz, Sir, TriplePendulum};
use m2td::sim::EnsembleSystem;
use m2td::stitch::StitchKind;

fn workbench(system: &dyn EnsembleSystem, t_end: f64, rank: usize) -> Workbench<'_> {
    let cfg = WorkbenchConfig {
        resolution: 6,
        time_steps: 6,
        t_end,
        substeps: 10,
        rank,
        seed: 1234,
        noise_sigma: 0.0,
    };
    Workbench::new(system, cfg).expect("workbench builds")
}

#[test]
fn m2td_dominates_conventional_on_every_paper_system() {
    // The Table II / Table IV headline across all three systems.
    let dp = DoublePendulum::default();
    let tp = TriplePendulum::default();
    let lz = Lorenz::default();
    let systems: [(&dyn EnsembleSystem, f64); 3] = [(&dp, 2.0), (&tp, 2.0), (&lz, 1.0)];
    for (system, t_end) in systems {
        let w = workbench(system, t_end, 3);
        let m2td = w.run_m2td(4, M2tdOptions::default(), 1.0, 1.0).unwrap();
        let budget = w.m2td_budget(4, 1.0, 1.0).unwrap();
        for scheme in [
            &RandomSampling as &dyn SamplingScheme,
            &GridSampling,
            &SliceSampling,
        ] {
            let conv = w.run_conventional(scheme, budget).unwrap();
            assert!(
                m2td.accuracy > 3.0 * conv.accuracy.max(0.0),
                "{}: M2TD {} should dominate {} {}",
                system.name(),
                m2td.accuracy,
                conv.method,
                conv.accuracy
            );
        }
    }
}

#[test]
fn every_pivot_choice_beats_conventional() {
    // Table VIII: pivot choice matters, but every choice wins big.
    let system = DoublePendulum::default();
    let w = workbench(&system, 2.0, 3);
    let budget = w.m2td_budget(4, 1.0, 1.0).unwrap();
    let random = w.run_conventional(&RandomSampling, budget).unwrap();
    for pivot in 0..w.n_modes() {
        let r = w.run_m2td(pivot, M2tdOptions::default(), 1.0, 1.0).unwrap();
        assert!(
            r.accuracy > 3.0 * random.accuracy.max(0.0),
            "pivot {pivot}: {} vs random {}",
            r.accuracy,
            random.accuracy
        );
    }
}

#[test]
fn density_reductions_behave_like_tables_6_and_7() {
    let system = DoublePendulum::default();
    let w = workbench(&system, 2.0, 3);
    let opts = M2tdOptions::default();
    let full = w.run_m2td(4, opts, 1.0, 1.0).unwrap().accuracy;
    let p_half = w.run_m2td(4, opts, 0.5, 1.0).unwrap().accuracy;
    let e_half = w.run_m2td(4, opts, 1.0, 0.5).unwrap().accuracy;
    assert!(
        full >= p_half - 1e-9,
        "reducing P must not improve accuracy"
    );
    assert!(
        full >= e_half - 1e-9,
        "reducing E must not improve accuracy"
    );
    // The paper's VII-E.5 observation: E reductions hurt more than P
    // reductions (effective density ∝ P·E²).
    assert!(
        p_half >= e_half - 1e-9,
        "E reduction ({e_half}) should hurt at least as much as P reduction ({p_half})"
    );
}

#[test]
fn zero_join_rescues_thin_budgets() {
    // Table V: at reduced budgets zero-join beats plain join.
    let system = DoublePendulum::default();
    let w = workbench(&system, 2.0, 3);
    let join = w
        .run_m2td_cells(4, M2tdOptions::default(), 1.0, 1.0, 0.4)
        .unwrap();
    let zero = w
        .run_m2td_cells(
            4,
            M2tdOptions {
                stitch: StitchKind::ZeroJoin,
                ..M2tdOptions::default()
            },
            1.0,
            1.0,
            0.4,
        )
        .unwrap();
    assert!(
        zero.accuracy > join.accuracy,
        "zero-join {} must beat join {} at 40% budget",
        zero.accuracy,
        join.accuracy
    );
    // Zero-join produces at least as many join entries.
    let jn = join.stitch.as_ref().unwrap().join_nnz;
    let zn = zero.stitch.as_ref().unwrap().join_nnz;
    assert!(zn > jn);
}

#[test]
fn distributed_agrees_with_serial_through_public_api() {
    let system = Sir;
    let w = workbench(&system, 40.0, 2);
    let (x1, x2, partition) = w.subsystems(4, 1.0, 1.0, 1.0).unwrap();
    let ranks: Vec<usize> = partition
        .join_modes()
        .iter()
        .map(|&m| 2usize.min(w.full_dims()[m]))
        .collect();
    let serial = m2td_decompose(&x1, &x2, partition.k(), &ranks, M2tdOptions::default()).unwrap();
    let dist = d_m2td(
        &x1,
        &x2,
        partition.k(),
        &ranks,
        M2tdOptions::default(),
        &MapReduce::new(3),
    )
    .unwrap();
    let diff = dist
        .tucker
        .core
        .sub(&serial.tucker.core)
        .unwrap()
        .frobenius_norm();
    assert!(diff < 1e-9, "distributed core differs by {diff}");

    // Serial and distributed accuracy agree too.
    let a_serial = w.accuracy_join_order(&serial.tucker, &partition).unwrap();
    let a_dist = w.accuracy_join_order(&dist.tucker, &partition).unwrap();
    assert!((a_serial - a_dist).abs() < 1e-9);

    // Cluster projection: phase totals shrink with servers.
    let t = |srv: usize| {
        let m = ClusterModel::new(srv);
        dist.phase1.on_cluster(&m).total()
            + dist.phase2.on_cluster(&m).total()
            + dist.phase3.on_cluster(&m).total()
    };
    assert!(t(1) >= t(18));
}

#[test]
fn all_variants_and_projections_compose() {
    let system = Sir;
    let w = workbench(&system, 40.0, 2);
    for combine in PivotCombine::all() {
        for projection in [CoreProjection::Transpose, CoreProjection::LeastSquares] {
            for stitch in [StitchKind::Join, StitchKind::ZeroJoin] {
                let opts = M2tdOptions {
                    combine,
                    projection,
                    stitch,
                    ..M2tdOptions::default()
                };
                let r = w.run_m2td(4, opts, 1.0, 1.0).unwrap();
                assert!(
                    r.accuracy.is_finite() && r.accuracy > 0.0,
                    "{} {:?} {:?} produced accuracy {}",
                    combine.name(),
                    projection,
                    stitch,
                    r.accuracy
                );
            }
        }
    }
}

#[test]
fn least_squares_projection_never_hurts() {
    // The ablation claim: LS core recovery >= transpose core recovery for
    // the combined (non-orthonormal) factors.
    let system = DoublePendulum::default();
    let w = workbench(&system, 2.0, 3);
    for combine in [PivotCombine::Average, PivotCombine::Select] {
        let acc = |projection| {
            let opts = M2tdOptions {
                combine,
                projection,
                ..M2tdOptions::default()
            };
            w.run_m2td(4, opts, 1.0, 1.0).unwrap().accuracy
        };
        let transpose = acc(CoreProjection::Transpose);
        let ls = acc(CoreProjection::LeastSquares);
        assert!(
            ls >= transpose - 1e-9,
            "{}: LS {} vs transpose {}",
            combine.name(),
            ls,
            transpose
        );
    }
}

#[test]
fn grid_beats_random_which_is_conventional_ordering() {
    // Table II's conventional-scheme ordering at a budget where grid's
    // structure can express itself.
    let system = DoublePendulum::default();
    let w = workbench(&system, 2.0, 3);
    let budget = w.m2td_budget(4, 1.0, 1.0).unwrap();
    let grid = w.run_conventional(&GridSampling, budget).unwrap();
    let random = w.run_conventional(&RandomSampling, budget).unwrap();
    assert!(
        grid.accuracy > random.accuracy,
        "grid {} should beat random {}",
        grid.accuracy,
        random.accuracy
    );
}
