//! Failure injection across crate boundaries: every degenerate input must
//! produce a clean error (never a panic) with a useful message — and under
//! the deterministic fault injector, every fault schedule that eventually
//! succeeds must reproduce the fault-free result exactly.

use m2td::core::{
    m2td_decompose, CoreError, M2tdOptions, SimFaultPolicy, Workbench, WorkbenchConfig,
};
use m2td::dist::{
    d_m2td, d_m2td_fault_tolerant, DistError, FaultConfig, MapReduce, Phase3Strategy, PHASE1_JOB,
    PHASE2_JOB, PHASE3_JOB,
};
use m2td::fault::{FaultPlan, RetryPolicy};
use m2td::sampling::{PfPartition, RandomSampling, SamplingScheme};
use m2td::sim::systems::Sir;
use m2td::stitch::{stitch, StitchKind};
use m2td::tensor::{hosvd_sparse, DenseTensor, Shape, SparseTensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_workbench() -> Workbench<'static> {
    static SYS: Sir = Sir;
    let cfg = WorkbenchConfig {
        resolution: 3,
        time_steps: 3,
        t_end: 10.0,
        substeps: 4,
        rank: 2,
        seed: 0,
        noise_sigma: 0.0,
    };
    Workbench::new(&SYS, cfg).unwrap()
}

#[test]
fn all_zero_ensemble_is_rejected_not_panicking() {
    let empty = SparseTensor::empty(&[4, 4, 4]);
    let err = hosvd_sparse(&empty, &[2, 2, 2]).unwrap_err();
    assert!(err.to_string().contains("no elements") || !err.to_string().is_empty());
}

#[test]
fn rank_one_degenerate_tensor_decomposes() {
    // A single stored cell is representable exactly at rank 1.
    let single = SparseTensor::from_entries(&[4, 4, 4], &[(vec![1, 2, 3], 7.5)]).unwrap();
    let t = hosvd_sparse(&single, &[1, 1, 1]).unwrap();
    let err = t.relative_error(&single.to_dense().unwrap()).unwrap();
    assert!(
        err < 1e-10,
        "single-cell tensor not exactly recovered: {err}"
    );
}

#[test]
fn mismatched_partitions_error_cleanly() {
    let x1 = SparseTensor::from_entries(&[3, 3], &[(vec![0, 0], 1.0)]).unwrap();
    let x2 = SparseTensor::from_entries(&[4, 3], &[(vec![0, 0], 1.0)]).unwrap();
    // Pivot extents disagree.
    assert!(stitch(&x1, &x2, 1, StitchKind::Join).is_err());
    assert!(m2td_decompose(&x1, &x2, 1, &[2, 2, 2], M2tdOptions::default()).is_err());
    assert!(d_m2td(
        &x1,
        &x2,
        1,
        &[2, 2, 2],
        M2tdOptions::default(),
        &MapReduce::new(1)
    )
    .is_err());
}

#[test]
fn workbench_rejects_invalid_pivots_and_fractions() {
    let w = tiny_workbench();
    // Out-of-range pivot.
    assert!(w.run_m2td(9, M2tdOptions::default(), 1.0, 1.0).is_err());
    // Invalid density fractions.
    assert!(w.run_m2td(4, M2tdOptions::default(), 0.0, 1.0).is_err());
    assert!(w.run_m2td(4, M2tdOptions::default(), 1.0, 1.5).is_err());
    // Invalid cell fraction.
    assert!(w
        .run_m2td_cells(4, M2tdOptions::default(), 1.0, 1.0, 0.0)
        .is_err());
    assert!(w
        .run_m2td_cells(4, M2tdOptions::default(), 1.0, 1.0, 2.0)
        .is_err());
}

#[test]
fn conventional_budget_overflow_is_an_error() {
    let w = tiny_workbench();
    let total: usize = w.full_dims().iter().product();
    assert!(w.run_conventional(&RandomSampling, total + 1).is_err());
}

#[test]
fn partition_structural_errors_have_messages() {
    let err = PfPartition::balanced(4, 0).unwrap_err();
    assert!(err.to_string().contains("halves"), "got: {err}");
    let err = PfPartition::new(vec![0], vec![0], vec![1], 3).unwrap_err();
    assert!(err.to_string().contains("twice"), "got: {err}");
}

#[test]
fn sampling_on_degenerate_spaces() {
    let mut rng = StdRng::seed_from_u64(1);
    // Zero-extent mode.
    assert!(RandomSampling.plan(&[0, 5], 1, &mut rng).is_err());
    // Budget zero is a valid empty plan for random sampling.
    let plan = RandomSampling.plan(&[3, 3], 0, &mut rng).unwrap();
    assert!(plan.is_empty());
}

#[test]
fn error_messages_chain_to_their_sources() {
    use std::error::Error;
    let x1 = SparseTensor::from_entries(&[3, 3], &[(vec![0, 0], 1.0)]).unwrap();
    let x2 = SparseTensor::from_entries(&[4, 3], &[(vec![0, 0], 1.0)]).unwrap();
    let err = m2td_decompose(&x1, &x2, 1, &[2, 2, 2], M2tdOptions::default()).unwrap_err();
    // The top-level error formats, and either is terminal or chains.
    let mut depth = 0;
    let mut cur: Option<&dyn Error> = Some(&err);
    while let Some(e) = cur {
        assert!(!e.to_string().is_empty());
        cur = e.source();
        depth += 1;
        assert!(depth < 10, "error chain too deep / cyclic");
    }
}

#[test]
fn nan_inputs_do_not_crash_decomposition() {
    // A NaN simulation value (diverged trajectory) must not panic the
    // kernels; it may poison accuracy, which the caller can detect.
    let x =
        SparseTensor::from_entries(&[3, 3], &[(vec![0, 0], f64::NAN), (vec![1, 1], 1.0)]).unwrap();
    match hosvd_sparse(&x, &[1, 1]) {
        Ok(t) => {
            let recon = t.reconstruct().unwrap();
            // NaN propagates; caller sees it in the output.
            assert!(recon.as_slice().iter().any(|v| v.is_nan()) || recon.max_abs().is_finite());
        }
        Err(_) => {
            // A convergence error is also acceptable.
        }
    }
}

#[test]
fn zero_value_simulations_are_preserved_through_the_pipeline() {
    // The stored-zero vs null distinction must survive stitching.
    let x1 = SparseTensor::from_entries(&[2, 2], &[(vec![0, 0], 0.0)]).unwrap();
    let x2 = SparseTensor::from_entries(&[2, 2], &[(vec![0, 1], 4.0)]).unwrap();
    let (j, _) = stitch(&x1, &x2, 1, StitchKind::Join).unwrap();
    // The pair (pivot 0, a=0, b=1) exists with average (0 + 4)/2.
    assert_eq!(j.get(&[0, 0, 1]), Some(2.0));
    assert_eq!(j.nnz(), 1);
}

#[test]
fn dense_tensor_shape_mismatches_error() {
    let a = DenseTensor::zeros(&[2, 3]);
    let b = DenseTensor::zeros(&[3, 2]);
    assert!(a.sub(&b).is_err());
    assert!(a.add(&b).is_err());
    assert!(a.permute_modes(&[0, 0]).is_err());
}

// ---- Deterministic fault injection ------------------------------------

/// Two dense analytic sub-tensors sharing a pivot mode.
fn fault_sub_tensors() -> (SparseTensor, SparseTensor) {
    let f = |p: usize, a: usize, b: usize| {
        ((p as f64) * 0.7).sin() * ((a as f64) * 0.3 + 1.0) * ((b as f64) * 0.5 + 1.0) + 0.1
    };
    let full = |g: &dyn Fn(&[usize]) -> f64| {
        let dims = [6, 5];
        let shape = Shape::new(&dims);
        let entries: Vec<(Vec<usize>, f64)> = (0..shape.num_elements())
            .map(|l| {
                let idx = shape.multi_index(l);
                let v = g(&idx);
                (idx, v)
            })
            .collect();
        SparseTensor::from_entries(&dims, &entries).unwrap()
    };
    let x1 = full(&|i: &[usize]| f(i[0], i[1], 2));
    let x2 = full(&|i: &[usize]| f(i[0], 2, i[1]));
    (x1, x2)
}

#[test]
fn task_killed_in_each_phase_still_converges() {
    let (x1, x2) = fault_sub_tensors();
    let ranks = [3, 3, 3];
    let opts = M2tdOptions::default();
    let engine = MapReduce::new(3);
    let clean = d_m2td(&x1, &x2, 1, &ranks, opts, &engine).unwrap();
    for job in [PHASE1_JOB, PHASE2_JOB, PHASE3_JOB] {
        // Kill aggressively, but only inside one phase at a time; the
        // default kill cap bounds consecutive kills so retries succeed.
        let faults = FaultConfig {
            plan: FaultPlan::new(33, 0.9, 0.0, 0.0).in_job(job),
            policy: RetryPolicy::default(),
        };
        let faulty = d_m2td_fault_tolerant(
            &x1,
            &x2,
            1,
            &ranks,
            opts,
            &engine,
            Phase3Strategy::ChunkPartition,
            &faults,
            None,
        )
        .unwrap_or_else(|e| panic!("phase-{job} faults should be survivable: {e}"));
        assert_eq!(
            clean.tucker.core.as_slice(),
            faulty.tucker.core.as_slice(),
            "core differs after kills in phase {job}"
        );
        let total = faulty.total_tasks();
        assert!(total.kills() > 0, "no kill landed in phase {job}");
        // The fault plan is scoped: only the targeted phase saw kills.
        for (phase_job, stats) in [
            (PHASE1_JOB, &faulty.phase1),
            (PHASE2_JOB, &faulty.phase2),
            (PHASE3_JOB, &faulty.phase3),
        ] {
            if phase_job != job {
                assert_eq!(
                    stats.tasks.kills(),
                    0,
                    "phase {phase_job} saw kills scoped to phase {job}"
                );
            }
        }
    }
}

#[test]
fn straggler_is_rescued_by_speculation() {
    let (x1, x2) = fault_sub_tensors();
    let ranks = [3, 3, 3];
    let opts = M2tdOptions::default();
    let engine = MapReduce::new(2);
    let clean = d_m2td(&x1, &x2, 1, &ranks, opts, &engine).unwrap();
    // Every task straggles far past the speculation threshold.
    let policy = RetryPolicy::default();
    let faults = FaultConfig {
        plan: FaultPlan::new(8, 0.0, 1.0, 60.0),
        policy,
    };
    let faulty = d_m2td_fault_tolerant(
        &x1,
        &x2,
        1,
        &ranks,
        opts,
        &engine,
        Phase3Strategy::ChunkPartition,
        &faults,
        None,
    )
    .unwrap();
    let total = faulty.total_tasks();
    assert!(total.stragglers > 0, "no straggler injected");
    assert!(
        total.speculative_launches > 0,
        "stragglers past the threshold must launch backups"
    );
    // The charge per straggler is capped at the speculation threshold,
    // not the full 60-second delay.
    assert!(
        total.virtual_lost_secs <= total.stragglers as f64 * policy.speculate_after_secs + 1e-9,
        "speculation failed to cap straggler cost: {} secs over {} stragglers",
        total.virtual_lost_secs,
        total.stragglers
    );
    assert_eq!(clean.tucker.core.as_slice(), faulty.tucker.core.as_slice());
}

#[test]
fn exhausted_retry_budget_is_a_clean_dist_error() {
    let (x1, x2) = fault_sub_tensors();
    // Uncapped certain kills: no attempt can ever succeed.
    let faults = FaultConfig {
        plan: FaultPlan::new(4, 1.0, 0.0, 0.0).with_kill_cap(u32::MAX),
        policy: RetryPolicy::with_max_attempts(2),
    };
    let err = d_m2td_fault_tolerant(
        &x1,
        &x2,
        1,
        &[3, 3, 3],
        M2tdOptions::default(),
        &MapReduce::new(2),
        Phase3Strategy::ChunkPartition,
        &faults,
        None,
    )
    .unwrap_err();
    match &err {
        DistError::Exhausted(m2td::fault::FaultError::RetryExhausted { attempts, .. }) => {
            assert_eq!(*attempts, 2, "budget was 2 attempts");
        }
        other => panic!("expected DistError::Exhausted, got {other}"),
    }
    let msg = err.to_string();
    assert!(
        msg.contains("retry budget exhausted"),
        "unhelpful message: {msg}"
    );
}

#[test]
fn coverage_threshold_violation_is_a_clean_core_error() {
    static SYS: Sir = Sir;
    let cfg = WorkbenchConfig {
        resolution: 3,
        time_steps: 3,
        t_end: 10.0,
        substeps: 4,
        rank: 2,
        seed: 0,
        noise_sigma: 0.0,
    };
    let w = Workbench::new(&SYS, cfg).unwrap();
    let policy = SimFaultPolicy::new(2, 0.95)
        .with_max_attempts(1)
        .with_min_coverage(0.8);
    let err = w
        .run_m2td_degraded(4, M2tdOptions::default(), 1.0, 1.0, 1.0, &policy)
        .unwrap_err();
    match &err {
        CoreError::InsufficientCoverage { coverage, required } => {
            assert!(coverage < required);
        }
        other => panic!("expected InsufficientCoverage, got {other}"),
    }
    assert!(err.to_string().contains("coverage"), "{err}");
}
