//! The fault-tolerance determinism contract: because every map/reduce
//! task is pure, any seeded fault schedule that eventually succeeds must
//! yield factors and core **bitwise identical** to the fault-free run, at
//! every worker count — and a checkpointed run interrupted in phase 3
//! must resume from persisted phase-1/2 artifacts without recomputing
//! them.
//!
//! CI runs this file under `M2TD_THREADS=1` and `M2TD_THREADS=4` with two
//! values of `M2TD_FAULT_SEED`, so the same assertions are exercised
//! across the full thread × fault-schedule matrix.

use m2td::core::M2tdOptions;
use m2td::dist::{
    d_m2td, d_m2td_fault_tolerant, d_m2td_resumable, CheckpointStore, DistDecomposition, DistError,
    DlqStore, FaultConfig, JobRecovery, ManifestStore, MapReduce, Phase3Strategy, TransportKind,
    PHASE3_JOB,
};
use m2td::fault::{FaultPlan, RetryPolicy};
use m2td::tensor::{Shape, SparseTensor};

const K: usize = 1;
const RANKS: [usize; 3] = [3, 3, 3];

/// Two dense analytic sub-tensors sharing a pivot mode.
fn sub_tensors() -> (SparseTensor, SparseTensor) {
    let f = |p: usize, a: usize, b: usize| {
        ((p as f64) * 0.6).cos() * ((a as f64) * 0.25 + 1.0) * ((b as f64) * 0.45 + 1.0) - 0.3
    };
    let full = |g: &dyn Fn(&[usize]) -> f64| {
        let dims = [7, 6];
        let shape = Shape::new(&dims);
        let entries: Vec<(Vec<usize>, f64)> = (0..shape.num_elements())
            .map(|l| {
                let idx = shape.multi_index(l);
                let v = g(&idx);
                (idx, v)
            })
            .collect();
        SparseTensor::from_entries(&dims, &entries).unwrap()
    };
    let x1 = full(&|i: &[usize]| f(i[0], i[1], 3));
    let x2 = full(&|i: &[usize]| f(i[0], 3, i[1]));
    (x1, x2)
}

fn assert_bitwise_equal(a: &DistDecomposition, b: &DistDecomposition, label: &str) {
    assert_eq!(
        a.tucker.core.as_slice(),
        b.tucker.core.as_slice(),
        "core not bitwise identical: {label}"
    );
    assert_eq!(a.tucker.factors.len(), b.tucker.factors.len());
    for (i, (fa, fb)) in a
        .tucker
        .factors
        .iter()
        .zip(b.tucker.factors.iter())
        .enumerate()
    {
        assert_eq!(
            fa.as_slice(),
            fb.as_slice(),
            "factor {i} not bitwise identical: {label}"
        );
    }
}

/// Extra fault seeds injected by the CI fault matrix via `M2TD_FAULT_SEED`.
fn seeds_under_test() -> Vec<u64> {
    let mut seeds = vec![3, 17, 101];
    if let Ok(s) = std::env::var("M2TD_FAULT_SEED") {
        if let Ok(seed) = s.trim().parse::<u64>() {
            if !seeds.contains(&seed) {
                seeds.push(seed);
            }
        }
    }
    seeds
}

#[test]
fn fault_schedules_are_bitwise_deterministic_across_seeds_and_workers() {
    let (x1, x2) = sub_tensors();
    let opts = M2tdOptions::default();

    // ChunkPartition's dataflow partitions by `engine.workers()`, so the
    // reference is per worker count; the invariant under test is that a
    // fault schedule never shows through at any worker count.
    for workers in [1, 4] {
        let engine = MapReduce::new(workers);
        let reference = d_m2td(&x1, &x2, K, &RANKS, opts, &engine).unwrap();
        for seed in seeds_under_test() {
            let faults = FaultConfig {
                plan: FaultPlan::new(seed, 0.5, 0.3, 20.0),
                policy: RetryPolicy::default(),
            };
            let run = d_m2td_fault_tolerant(
                &x1,
                &x2,
                K,
                &RANKS,
                opts,
                &engine,
                Phase3Strategy::ChunkPartition,
                &faults,
                None,
            )
            .unwrap_or_else(|e| panic!("seed {seed}, {workers} workers: {e}"));
            assert_bitwise_equal(&reference, &run, &format!("seed {seed}, {workers} workers"));
            assert!(
                run.total_tasks().kills() > 0,
                "seed {seed} injected no kills — the property is vacuous"
            );
            // The injected schedule (and hence every counter) is a pure
            // function of (seed, job, task, attempt): rerunning must
            // reproduce it exactly.
            let again = d_m2td_fault_tolerant(
                &x1,
                &x2,
                K,
                &RANKS,
                opts,
                &engine,
                Phase3Strategy::ChunkPartition,
                &faults,
                None,
            )
            .unwrap();
            assert_eq!(
                run.total_tasks(),
                again.total_tasks(),
                "seed {seed}, {workers} workers: counters not reproducible"
            );
            assert_bitwise_equal(
                &run,
                &again,
                &format!("seed {seed} rerun, {workers} workers"),
            );
        }
    }
}

#[test]
fn channel_transport_is_bitwise_deterministic_under_faults() {
    let (x1, x2) = sub_tensors();
    let opts = M2tdOptions::default();

    // The envelope path must be invisible: at every worker count, a
    // channel-transport run under kills, stragglers AND wire corruption
    // is bitwise identical to the direct-call fault-free run.
    for workers in [1, 2, 8] {
        let direct = MapReduce::new(workers).with_transport(TransportKind::Direct);
        let reference = d_m2td(&x1, &x2, K, &RANKS, opts, &direct).unwrap();
        let channel = direct.with_transport(TransportKind::Channel);
        for seed in seeds_under_test() {
            // Kills are capped at 2 consecutive per task, but wire
            // corruption consumes attempts on top of them on every leg
            // of every retry — give the budget room so no seed exhausts.
            let faults = FaultConfig {
                plan: FaultPlan::new(seed, 0.4, 0.2, 20.0).with_xport_corrupt_rate(0.2),
                policy: RetryPolicy::with_max_attempts(10),
            };
            let run = d_m2td_fault_tolerant(
                &x1,
                &x2,
                K,
                &RANKS,
                opts,
                &channel,
                Phase3Strategy::ChunkPartition,
                &faults,
                None,
            )
            .unwrap_or_else(|e| panic!("channel seed {seed}, {workers} workers: {e}"));
            assert_bitwise_equal(
                &reference,
                &run,
                &format!("channel transport, seed {seed}, {workers} workers"),
            );
            assert!(
                run.total_tasks().xport_corruptions > 0,
                "seed {seed}, {workers} workers: no envelopes were damaged — \
                 the corruption property is vacuous"
            );
        }
    }
}

#[test]
fn mode_shuffle_phase3_is_also_fault_deterministic() {
    let (x1, x2) = sub_tensors();
    let opts = M2tdOptions::default();
    let engine = MapReduce::new(2);
    let reference = d_m2td_fault_tolerant(
        &x1,
        &x2,
        K,
        &RANKS,
        opts,
        &engine,
        Phase3Strategy::ModeShuffle,
        &FaultConfig::none(),
        None,
    )
    .unwrap();
    for seed in seeds_under_test() {
        let faults = FaultConfig {
            plan: FaultPlan::new(seed, 0.6, 0.0, 0.0),
            policy: RetryPolicy::default(),
        };
        let run = d_m2td_fault_tolerant(
            &x1,
            &x2,
            K,
            &RANKS,
            opts,
            &engine,
            Phase3Strategy::ModeShuffle,
            &faults,
            None,
        )
        .unwrap();
        assert_bitwise_equal(&reference, &run, &format!("mode-shuffle, seed {seed}"));
    }
}

/// A temp dir unique per process *and* per call: pid alone is not enough
/// because pids recycle and one process may run the test repeatedly.
fn unique_tmp_dir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("{tag}_{}_{n}", std::process::id()))
}

#[test]
fn phase3_failure_resumes_from_checkpoints_without_recomputing() {
    let dir = unique_tmp_dir("m2td_ckpt_resume");
    let _ = std::fs::remove_dir_all(&dir);
    let store = CheckpointStore::new(&dir).unwrap();
    let (x1, x2) = sub_tensors();
    let opts = M2tdOptions::default();
    let engine = MapReduce::new(2);
    let clean = d_m2td(&x1, &x2, K, &RANKS, opts, &engine).unwrap();

    // First attempt: phase 3 is unconditionally killed with no retries, so
    // the run dies *after* phases 1 and 2 persisted their checkpoints.
    let lethal = FaultConfig {
        plan: FaultPlan::new(12, 1.0, 0.0, 0.0)
            .in_job(PHASE3_JOB)
            .with_kill_cap(u32::MAX),
        policy: RetryPolicy::no_retries(),
    };
    let err = d_m2td_fault_tolerant(
        &x1,
        &x2,
        K,
        &RANKS,
        opts,
        &engine,
        Phase3Strategy::ChunkPartition,
        &lethal,
        Some(&store),
    )
    .unwrap_err();
    assert!(
        matches!(err, DistError::Exhausted(_)),
        "expected an exhausted retry budget, got {err}"
    );

    // Second attempt, fault-free: phases 1–2 must resume from the
    // checkpoints (zero task executions), phase 3 recomputes, and the
    // result is bitwise identical to the never-failed run.
    let resumed = d_m2td_fault_tolerant(
        &x1,
        &x2,
        K,
        &RANKS,
        opts,
        &engine,
        Phase3Strategy::ChunkPartition,
        &FaultConfig::none(),
        Some(&store),
    )
    .unwrap();
    assert!(resumed.phase1.resumed, "phase 1 was recomputed");
    assert!(resumed.phase2.resumed, "phase 2 was recomputed");
    assert!(!resumed.phase3.resumed);
    assert_eq!(
        resumed.phase1.tasks.attempts(),
        0,
        "phase 1 executed tasks despite resuming"
    );
    assert_eq!(
        resumed.phase2.tasks.attempts(),
        0,
        "phase 2 executed tasks despite resuming"
    );
    assert!(resumed.phase3.tasks.attempts() > 0);
    assert_eq!(
        clean.tucker.core.as_slice(),
        resumed.tucker.core.as_slice(),
        "resumed result differs from fault-free run"
    );

    // A changed input invalidates the fingerprint: nothing resumes.
    let mut entries: Vec<(Vec<usize>, f64)> = x1.iter().collect();
    entries[0].1 += 1.0;
    let x1b = SparseTensor::from_entries(x1.dims(), &entries).unwrap();
    let fresh = d_m2td_fault_tolerant(
        &x1b,
        &x2,
        K,
        &RANKS,
        opts,
        &engine,
        Phase3Strategy::ChunkPartition,
        &FaultConfig::none(),
        Some(&store),
    )
    .unwrap();
    assert!(!fresh.phase1.resumed && !fresh.phase2.resumed);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn interrupted_phase3_resumes_from_manifest_and_drains_the_dlq() {
    let dir = unique_tmp_dir("m2td_job_resume");
    let _ = std::fs::remove_dir_all(&dir);
    let store = CheckpointStore::new(&dir).unwrap();
    let manifest = ManifestStore::open(&dir).unwrap();
    let dlq = DlqStore::open(&dir);
    let (x1, x2) = sub_tensors();
    let opts = M2tdOptions::default();
    let engine = MapReduce::new(2).with_transport(TransportKind::Channel);
    let clean = d_m2td(&x1, &x2, K, &RANKS, opts, &engine).unwrap();

    // "Kill mid-phase-3": doom one of the two phase-3 reduce tasks and
    // demand full coverage, so the run dies after phases 1-2 completed,
    // the surviving phase-3 task was recorded in the manifest, and the
    // doomed one was parked in the dead-letter queue.
    let lethal = FaultConfig {
        plan: FaultPlan::none().with_doom_mask(1 << 1).in_job(PHASE3_JOB),
        policy: RetryPolicy::default(),
    };
    let strict = JobRecovery::new(&manifest, &dlq).with_min_coverage(1.0);
    let err = d_m2td_resumable(
        &x1,
        &x2,
        K,
        &RANKS,
        opts,
        &engine,
        Phase3Strategy::ChunkPartition,
        &lethal,
        Some(&store),
        &strict,
    )
    .unwrap_err();
    assert!(
        matches!(err, DistError::Worker(_)),
        "expected a coverage failure, got {err}"
    );
    assert_eq!(dlq.depth(), 1, "the doomed task must be parked");

    // Restart without requeueing: the dead task is still parked, so the
    // run completes degraded (coverage 1/2 meets the default 0.5 floor)
    // and differs from the clean result.
    let recovery = JobRecovery::new(&manifest, &dlq);
    let degraded = d_m2td_resumable(
        &x1,
        &x2,
        K,
        &RANKS,
        opts,
        &engine,
        Phase3Strategy::ChunkPartition,
        &FaultConfig::none(),
        Some(&store),
        &recovery,
    )
    .unwrap();
    assert!(degraded.degraded);
    assert_eq!(degraded.dead_tasks, vec![1]);
    assert!(
        degraded.resumed_tasks > 0,
        "the surviving phase-3 task must replay from the manifest"
    );
    assert_ne!(
        degraded.dist.tucker.core.as_slice(),
        clean.tucker.core.as_slice(),
        "a core missing one partial cannot equal the clean core"
    );

    // Requeue and restart: the parked task re-runs, its entry drains,
    // and the result is bitwise identical to the uninterrupted run.
    assert_eq!(dlq.requeue_all().unwrap(), 1);
    let resumed = d_m2td_resumable(
        &x1,
        &x2,
        K,
        &RANKS,
        opts,
        &engine,
        Phase3Strategy::ChunkPartition,
        &FaultConfig::none(),
        Some(&store),
        &recovery,
    )
    .unwrap();
    assert!(!resumed.degraded);
    assert!(resumed.dead_tasks.is_empty());
    assert_eq!(resumed.drained, 1, "the requeued entry must drain");
    assert!(resumed.resumed_tasks > 0);
    assert_eq!(dlq.depth(), 0);
    assert_bitwise_equal(&clean, &resumed.dist, "after requeue and resume");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn degraded_pipeline_is_deterministic_per_seed() {
    use m2td::core::{SimFaultPolicy, Workbench, WorkbenchConfig};
    use m2td::sim::systems::Sir;
    static SYS: Sir = Sir;
    let cfg = WorkbenchConfig {
        resolution: 4,
        time_steps: 4,
        t_end: 40.0,
        substeps: 8,
        rank: 2,
        seed: 3,
        noise_sigma: 0.0,
    };
    let w = Workbench::new(&SYS, cfg).unwrap();
    let policy = SimFaultPolicy::new(19, 0.3)
        .with_max_attempts(1)
        .with_min_coverage(0.2);
    let opts = M2tdOptions {
        stitch: m2td::stitch::StitchKind::ZeroJoin,
        ..M2tdOptions::default()
    };
    let a = w
        .run_m2td_degraded(4, opts, 1.0, 1.0, 1.0, &policy)
        .unwrap();
    let b = w
        .run_m2td_degraded(4, opts, 1.0, 1.0, 1.0, &policy)
        .unwrap();
    assert_eq!(a.accuracy.to_bits(), b.accuracy.to_bits());
    assert_eq!(a.degraded.unwrap(), b.degraded.unwrap());
    assert_eq!(a.cells, b.cells);
}
