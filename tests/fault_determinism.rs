//! The fault-tolerance determinism contract: because every map/reduce
//! task is pure, any seeded fault schedule that eventually succeeds must
//! yield factors and core **bitwise identical** to the fault-free run, at
//! every worker count — and a checkpointed run interrupted in phase 3
//! must resume from persisted phase-1/2 artifacts without recomputing
//! them.
//!
//! CI runs this file under `M2TD_THREADS=1` and `M2TD_THREADS=4` with two
//! values of `M2TD_FAULT_SEED`, so the same assertions are exercised
//! across the full thread × fault-schedule matrix.

use m2td::core::M2tdOptions;
use m2td::dist::{
    d_m2td, d_m2td_fault_tolerant, CheckpointStore, DistDecomposition, DistError, FaultConfig,
    MapReduce, Phase3Strategy, PHASE3_JOB,
};
use m2td::fault::{FaultPlan, RetryPolicy};
use m2td::tensor::{Shape, SparseTensor};

const K: usize = 1;
const RANKS: [usize; 3] = [3, 3, 3];

/// Two dense analytic sub-tensors sharing a pivot mode.
fn sub_tensors() -> (SparseTensor, SparseTensor) {
    let f = |p: usize, a: usize, b: usize| {
        ((p as f64) * 0.6).cos() * ((a as f64) * 0.25 + 1.0) * ((b as f64) * 0.45 + 1.0) - 0.3
    };
    let full = |g: &dyn Fn(&[usize]) -> f64| {
        let dims = [7, 6];
        let shape = Shape::new(&dims);
        let entries: Vec<(Vec<usize>, f64)> = (0..shape.num_elements())
            .map(|l| {
                let idx = shape.multi_index(l);
                let v = g(&idx);
                (idx, v)
            })
            .collect();
        SparseTensor::from_entries(&dims, &entries).unwrap()
    };
    let x1 = full(&|i: &[usize]| f(i[0], i[1], 3));
    let x2 = full(&|i: &[usize]| f(i[0], 3, i[1]));
    (x1, x2)
}

fn assert_bitwise_equal(a: &DistDecomposition, b: &DistDecomposition, label: &str) {
    assert_eq!(
        a.tucker.core.as_slice(),
        b.tucker.core.as_slice(),
        "core not bitwise identical: {label}"
    );
    assert_eq!(a.tucker.factors.len(), b.tucker.factors.len());
    for (i, (fa, fb)) in a
        .tucker
        .factors
        .iter()
        .zip(b.tucker.factors.iter())
        .enumerate()
    {
        assert_eq!(
            fa.as_slice(),
            fb.as_slice(),
            "factor {i} not bitwise identical: {label}"
        );
    }
}

/// Extra fault seeds injected by the CI fault matrix via `M2TD_FAULT_SEED`.
fn seeds_under_test() -> Vec<u64> {
    let mut seeds = vec![3, 17, 101];
    if let Ok(s) = std::env::var("M2TD_FAULT_SEED") {
        if let Ok(seed) = s.trim().parse::<u64>() {
            if !seeds.contains(&seed) {
                seeds.push(seed);
            }
        }
    }
    seeds
}

#[test]
fn fault_schedules_are_bitwise_deterministic_across_seeds_and_workers() {
    let (x1, x2) = sub_tensors();
    let opts = M2tdOptions::default();

    // ChunkPartition's dataflow partitions by `engine.workers()`, so the
    // reference is per worker count; the invariant under test is that a
    // fault schedule never shows through at any worker count.
    for workers in [1, 4] {
        let engine = MapReduce::new(workers);
        let reference = d_m2td(&x1, &x2, K, &RANKS, opts, &engine).unwrap();
        for seed in seeds_under_test() {
            let faults = FaultConfig {
                plan: FaultPlan::new(seed, 0.5, 0.3, 20.0),
                policy: RetryPolicy::default(),
            };
            let run = d_m2td_fault_tolerant(
                &x1,
                &x2,
                K,
                &RANKS,
                opts,
                &engine,
                Phase3Strategy::ChunkPartition,
                &faults,
                None,
            )
            .unwrap_or_else(|e| panic!("seed {seed}, {workers} workers: {e}"));
            assert_bitwise_equal(&reference, &run, &format!("seed {seed}, {workers} workers"));
            assert!(
                run.total_tasks().kills() > 0,
                "seed {seed} injected no kills — the property is vacuous"
            );
            // The injected schedule (and hence every counter) is a pure
            // function of (seed, job, task, attempt): rerunning must
            // reproduce it exactly.
            let again = d_m2td_fault_tolerant(
                &x1,
                &x2,
                K,
                &RANKS,
                opts,
                &engine,
                Phase3Strategy::ChunkPartition,
                &faults,
                None,
            )
            .unwrap();
            assert_eq!(
                run.total_tasks(),
                again.total_tasks(),
                "seed {seed}, {workers} workers: counters not reproducible"
            );
            assert_bitwise_equal(
                &run,
                &again,
                &format!("seed {seed} rerun, {workers} workers"),
            );
        }
    }
}

#[test]
fn mode_shuffle_phase3_is_also_fault_deterministic() {
    let (x1, x2) = sub_tensors();
    let opts = M2tdOptions::default();
    let engine = MapReduce::new(2);
    let reference = d_m2td_fault_tolerant(
        &x1,
        &x2,
        K,
        &RANKS,
        opts,
        &engine,
        Phase3Strategy::ModeShuffle,
        &FaultConfig::none(),
        None,
    )
    .unwrap();
    for seed in seeds_under_test() {
        let faults = FaultConfig {
            plan: FaultPlan::new(seed, 0.6, 0.0, 0.0),
            policy: RetryPolicy::default(),
        };
        let run = d_m2td_fault_tolerant(
            &x1,
            &x2,
            K,
            &RANKS,
            opts,
            &engine,
            Phase3Strategy::ModeShuffle,
            &faults,
            None,
        )
        .unwrap();
        assert_bitwise_equal(&reference, &run, &format!("mode-shuffle, seed {seed}"));
    }
}

/// A temp dir unique per process *and* per call: pid alone is not enough
/// because pids recycle and one process may run the test repeatedly.
fn unique_tmp_dir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("{tag}_{}_{n}", std::process::id()))
}

#[test]
fn phase3_failure_resumes_from_checkpoints_without_recomputing() {
    let dir = unique_tmp_dir("m2td_ckpt_resume");
    let _ = std::fs::remove_dir_all(&dir);
    let store = CheckpointStore::new(&dir).unwrap();
    let (x1, x2) = sub_tensors();
    let opts = M2tdOptions::default();
    let engine = MapReduce::new(2);
    let clean = d_m2td(&x1, &x2, K, &RANKS, opts, &engine).unwrap();

    // First attempt: phase 3 is unconditionally killed with no retries, so
    // the run dies *after* phases 1 and 2 persisted their checkpoints.
    let lethal = FaultConfig {
        plan: FaultPlan::new(12, 1.0, 0.0, 0.0)
            .in_job(PHASE3_JOB)
            .with_kill_cap(u32::MAX),
        policy: RetryPolicy::no_retries(),
    };
    let err = d_m2td_fault_tolerant(
        &x1,
        &x2,
        K,
        &RANKS,
        opts,
        &engine,
        Phase3Strategy::ChunkPartition,
        &lethal,
        Some(&store),
    )
    .unwrap_err();
    assert!(
        matches!(err, DistError::Exhausted(_)),
        "expected an exhausted retry budget, got {err}"
    );

    // Second attempt, fault-free: phases 1–2 must resume from the
    // checkpoints (zero task executions), phase 3 recomputes, and the
    // result is bitwise identical to the never-failed run.
    let resumed = d_m2td_fault_tolerant(
        &x1,
        &x2,
        K,
        &RANKS,
        opts,
        &engine,
        Phase3Strategy::ChunkPartition,
        &FaultConfig::none(),
        Some(&store),
    )
    .unwrap();
    assert!(resumed.phase1.resumed, "phase 1 was recomputed");
    assert!(resumed.phase2.resumed, "phase 2 was recomputed");
    assert!(!resumed.phase3.resumed);
    assert_eq!(
        resumed.phase1.tasks.attempts(),
        0,
        "phase 1 executed tasks despite resuming"
    );
    assert_eq!(
        resumed.phase2.tasks.attempts(),
        0,
        "phase 2 executed tasks despite resuming"
    );
    assert!(resumed.phase3.tasks.attempts() > 0);
    assert_eq!(
        clean.tucker.core.as_slice(),
        resumed.tucker.core.as_slice(),
        "resumed result differs from fault-free run"
    );

    // A changed input invalidates the fingerprint: nothing resumes.
    let mut entries: Vec<(Vec<usize>, f64)> = x1.iter().collect();
    entries[0].1 += 1.0;
    let x1b = SparseTensor::from_entries(x1.dims(), &entries).unwrap();
    let fresh = d_m2td_fault_tolerant(
        &x1b,
        &x2,
        K,
        &RANKS,
        opts,
        &engine,
        Phase3Strategy::ChunkPartition,
        &FaultConfig::none(),
        Some(&store),
    )
    .unwrap();
    assert!(!fresh.phase1.resumed && !fresh.phase2.resumed);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn degraded_pipeline_is_deterministic_per_seed() {
    use m2td::core::{SimFaultPolicy, Workbench, WorkbenchConfig};
    use m2td::sim::systems::Sir;
    static SYS: Sir = Sir;
    let cfg = WorkbenchConfig {
        resolution: 4,
        time_steps: 4,
        t_end: 40.0,
        substeps: 8,
        rank: 2,
        seed: 3,
        noise_sigma: 0.0,
    };
    let w = Workbench::new(&SYS, cfg).unwrap();
    let policy = SimFaultPolicy::new(19, 0.3)
        .with_max_attempts(1)
        .with_min_coverage(0.2);
    let opts = M2tdOptions {
        stitch: m2td::stitch::StitchKind::ZeroJoin,
        ..M2tdOptions::default()
    };
    let a = w
        .run_m2td_degraded(4, opts, 1.0, 1.0, 1.0, &policy)
        .unwrap();
    let b = w
        .run_m2td_degraded(4, opts, 1.0, 1.0, 1.0, &policy)
        .unwrap();
    assert_eq!(a.accuracy.to_bits(), b.accuracy.to_bits());
    assert_eq!(a.degraded.unwrap(), b.degraded.unwrap());
    assert_eq!(a.cells, b.cells);
}
