//! The guard-layer contract, end to end:
//!
//! 1. A poisoned input cell is caught at the phase-1 boundary with the
//!    offending site and index — never propagated into a garbage core.
//! 2. The `ClampRank` policy turns a rank-deficient ensemble into a
//!    narrower decomposition that still passes the acceptance budget.
//! 3. Every checkpoint corruption kind (bit-flip, truncation, stale
//!    version) is quarantined on load and the recomputed core is bitwise
//!    identical to an uncorrupted run.
//! 4. When the guard is *not* installed, nothing changes: results are
//!    bitwise identical and no `guard.*` counter is ever emitted (the
//!    uninstalled path is a single relaxed atomic load).
//!
//! The guard and telemetry registries are process-global, so every test
//! that installs either serializes on [`lock`] and uninstalls on drop.

use m2td::core::{m2td_decompose, CoreError, M2tdOptions};
use m2td::dist::{
    d_m2td, d_m2td_fault_tolerant, CheckpointStore, DistDecomposition, FaultConfig, MapReduce,
    Phase3Strategy,
};
use m2td::fault::{CorruptionKind, FaultPlan, RetryPolicy};
use m2td::guard::{GuardConfig, GuardError, GuardPolicy, NonFiniteKind};
use m2td::tensor::{Shape, SparseTensor};
use std::sync::Mutex;

static LOCK: Mutex<()> = Mutex::new(());

/// Serializes tests that touch the global guard/telemetry registries.
/// Poisoning is ignored: a failed test must not cascade into the rest.
fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Uninstalls the guard and telemetry registries on drop, so a panicking
/// test cannot leak an installed guard into its successors.
struct Installed;

impl Installed {
    fn guard(cfg: GuardConfig) -> Self {
        m2td::guard::install(cfg);
        Installed
    }

    fn guard_and_obs(cfg: GuardConfig) -> Self {
        m2td::obs::install();
        m2td::obs::reset();
        m2td::guard::install(cfg);
        Installed
    }
}

impl Drop for Installed {
    fn drop(&mut self) {
        m2td::guard::uninstall();
        m2td::obs::uninstall();
    }
}

fn full(dims: &[usize], f: impl Fn(&[usize]) -> f64) -> SparseTensor {
    let shape = Shape::new(dims);
    let entries: Vec<(Vec<usize>, f64)> = (0..shape.num_elements())
        .map(|l| {
            let idx = shape.multi_index(l);
            let v = f(&idx);
            (idx, v)
        })
        .collect();
    SparseTensor::from_entries(dims, &entries).unwrap()
}

/// Two dense sub-tensors sharing one pivot mode. The generic oscillatory
/// fill makes the unfoldings genuinely full-rank, so a guarded rank-3
/// request sees a healthy spectrum (a *separable* fill would be caught as
/// rank-deficient by the very layer under test).
fn sub_tensors() -> (SparseTensor, SparseTensor) {
    let x1 = full(&[7, 6], |i| {
        ((i[0] * i[1]) as f64 * 0.37 + 0.2).sin() + 0.05 * (i[0] as f64)
    });
    let x2 = full(&[7, 6], |i| {
        ((i[0] * i[1]) as f64 * 0.23 + 0.7).cos() + 0.03 * (i[1] as f64)
    });
    (x1, x2)
}

/// Rank-one sub-tensors whose *join* is also multilinear-rank one: both
/// depend only on the shared pivot coordinate, so the averaged join tensor
/// `J[p,a,b] = (x₁[p,a] + x₂[p,b])/2` collapses to a function of `p`.
/// Every requested rank above 1 is then unattainable in every mode, and a
/// clamped rank-(1,1,1) decomposition reconstructs the join exactly.
fn rank_one_sub_tensors() -> (SparseTensor, SparseTensor) {
    let p_profile = |p: usize| ((p as f64) * 0.5).cos() + 1.5;
    let x1 = full(&[6, 5], |i| p_profile(i[0]));
    let x2 = full(&[6, 5], |i| p_profile(i[0]));
    (x1, x2)
}

#[test]
fn nan_cell_is_caught_at_the_phase1_boundary_with_its_index() {
    let _l = lock();
    let _g = Installed::guard(GuardConfig::DEFAULT);
    let (x1, x2) = sub_tensors();
    let mut entries: Vec<(Vec<usize>, f64)> = x1.iter().collect();
    let poisoned_index = entries[11].0.clone();
    entries[11].1 = f64::NAN;
    let x1 = SparseTensor::from_entries(x1.dims(), &entries).unwrap();

    let err = m2td_decompose(&x1, &x2, 1, &[3, 3, 3], M2tdOptions::default()).unwrap_err();
    match err {
        CoreError::Guard(GuardError::NonFinite {
            site, index, kind, ..
        }) => {
            assert_eq!(site, "phase1.x1", "wrong detection site");
            assert_eq!(index, poisoned_index, "wrong offending cell");
            assert_eq!(kind, NonFiniteKind::NaN);
        }
        other => panic!("expected a NonFinite guard error, got {other}"),
    }

    // The clean tensor on the other side is reported under its own site.
    let (clean1, x2) = sub_tensors();
    let mut entries: Vec<(Vec<usize>, f64)> = x2.iter().collect();
    entries[0].1 = f64::INFINITY;
    let x2 = SparseTensor::from_entries(x2.dims(), &entries).unwrap();
    let err = m2td_decompose(&clean1, &x2, 1, &[3, 3, 3], M2tdOptions::default()).unwrap_err();
    match err {
        CoreError::Guard(GuardError::NonFinite { site, kind, .. }) => {
            assert_eq!(site, "phase1.x2");
            assert_eq!(kind, NonFiniteKind::PosInf);
        }
        other => panic!("expected a NonFinite guard error, got {other}"),
    }
}

#[test]
fn nan_chaos_stream_in_the_pipeline_is_caught_not_propagated() {
    use m2td::core::{SimFaultPolicy, Workbench, WorkbenchConfig};
    use m2td::sim::systems::Sir;
    let _l = lock();
    let _g = Installed::guard(GuardConfig::DEFAULT);
    static SYS: Sir = Sir;
    let cfg = WorkbenchConfig {
        resolution: 4,
        time_steps: 4,
        t_end: 40.0,
        substeps: 8,
        rank: 2,
        seed: 3,
        noise_sigma: 0.0,
    };
    let w = Workbench::new(&SYS, cfg).unwrap();
    // A corruption rate this high poisons some cell with near certainty.
    let policy = SimFaultPolicy::new(19, 0.0).with_nan_cell_rate(0.3);
    let err = w
        .run_m2td_degraded(4, M2tdOptions::default(), 1.0, 1.0, 1.0, &policy)
        .unwrap_err();
    match err {
        CoreError::Guard(GuardError::NonFinite { site, kind, .. }) => {
            assert!(site.starts_with("phase1."), "late detection at {site}");
            assert_eq!(kind, NonFiniteKind::NaN);
        }
        other => panic!("expected a NonFinite guard error, got {other}"),
    }
}

#[test]
fn clamp_rank_repairs_a_rank_deficient_ensemble_within_budget() {
    let _l = lock();
    let _g = Installed::guard_and_obs(
        GuardConfig::with_policy(GuardPolicy::ClampRank).with_error_budget(1e-6),
    );
    let (x1, x2) = rank_one_sub_tensors();

    // Requested rank 3 everywhere; the data only supports rank 1.
    let d = m2td_decompose(&x1, &x2, 1, &[3, 3, 3], M2tdOptions::default()).unwrap();
    assert_eq!(
        d.tucker.core.dims(),
        &[1, 1, 1],
        "deficient modes were not clamped"
    );
    let verdict = d.guard.expect("budget configured, verdict expected");
    assert!(
        verdict.healthy,
        "rank-1 data at clamped rank 1 must reconstruct within budget, got {}",
        verdict.relative_error
    );
    let snap = m2td::obs::snapshot();
    assert!(
        snap.counter("guard.rank_clamped").unwrap_or(0) >= 3,
        "every deficient mode should bump guard.rank_clamped: {:?}",
        snap.counters_with_prefix("guard.")
    );

    // The same ensemble under Fail must refuse instead of repairing.
    m2td::guard::install(GuardConfig::DEFAULT);
    let err = m2td_decompose(&x1, &x2, 1, &[3, 3, 3], M2tdOptions::default()).unwrap_err();
    match err {
        CoreError::Guard(GuardError::RankDeficient {
            requested,
            effective,
            ..
        }) => {
            assert_eq!(requested, 3);
            assert_eq!(effective, 1);
        }
        other => panic!("expected RankDeficient, got {other}"),
    }
}

fn assert_bitwise_equal(a: &DistDecomposition, b: &DistDecomposition, label: &str) {
    assert_eq!(
        a.tucker.core.as_slice(),
        b.tucker.core.as_slice(),
        "core not bitwise identical: {label}"
    );
    for (i, (fa, fb)) in a
        .tucker
        .factors
        .iter()
        .zip(b.tucker.factors.iter())
        .enumerate()
    {
        assert_eq!(
            fa.as_slice(),
            fb.as_slice(),
            "factor {i} not bitwise identical: {label}"
        );
    }
}

fn unique_tmp_dir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("{tag}_{}_{n}", std::process::id()))
}

#[test]
fn every_corruption_kind_quarantines_and_recomputes_bitwise_identically() {
    let _l = lock();
    m2td::obs::install();
    let _cleanup = Installed; // uninstalls obs on drop
    let (x1, x2) = sub_tensors();
    let opts = M2tdOptions::default();
    let engine = MapReduce::new(2);
    let reference = d_m2td(&x1, &x2, 1, &[3, 3, 3], opts, &engine).unwrap();

    for kind in [
        CorruptionKind::BitFlip,
        CorruptionKind::Truncate,
        CorruptionKind::StaleVersion,
    ] {
        let dir = unique_tmp_dir("m2td_guard_corrupt");
        let _ = std::fs::remove_dir_all(&dir);
        let store = CheckpointStore::new(&dir).unwrap();

        // Clean checkpointed run, then damage both phase records on disk.
        let first = d_m2td_fault_tolerant(
            &x1,
            &x2,
            1,
            &[3, 3, 3],
            opts,
            &engine,
            Phase3Strategy::ChunkPartition,
            &FaultConfig::none(),
            Some(&store),
        )
        .unwrap();
        assert_bitwise_equal(&reference, &first, &format!("{kind}: clean run"));
        assert!(store.corrupt(1, kind).unwrap());
        assert!(store.corrupt(2, kind).unwrap());

        m2td::obs::reset();
        let recovered = d_m2td_fault_tolerant(
            &x1,
            &x2,
            1,
            &[3, 3, 3],
            opts,
            &engine,
            Phase3Strategy::ChunkPartition,
            &FaultConfig::none(),
            Some(&store),
        )
        .unwrap();
        assert!(
            !recovered.phase1.resumed && !recovered.phase2.resumed,
            "{kind}: a corrupted checkpoint must not be resumed from"
        );
        assert_bitwise_equal(&reference, &recovered, &format!("{kind}: recomputed run"));
        let snap = m2td::obs::snapshot();
        assert_eq!(
            snap.counter("guard.ckpt_quarantined"),
            Some(2),
            "{kind}: both damaged records should be quarantined"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn in_run_corruption_stream_damages_disk_but_never_the_result() {
    let _l = lock();
    m2td::obs::install();
    m2td::obs::reset();
    let _cleanup = Installed;
    let (x1, x2) = sub_tensors();
    let opts = M2tdOptions::default();
    let engine = MapReduce::new(2);
    let reference = d_m2td(&x1, &x2, 1, &[3, 3, 3], opts, &engine).unwrap();

    let dir = unique_tmp_dir("m2td_guard_stream");
    let _ = std::fs::remove_dir_all(&dir);
    let store = CheckpointStore::new(&dir).unwrap();
    // Rate 1.0: every checkpoint is damaged immediately after publication
    // (the post-publish disk-damage model). The writing run holds its
    // artifacts in memory, so its own result is unaffected.
    let chaos = FaultConfig {
        plan: FaultPlan::none().with_ckpt_corrupt_rate(0.999),
        policy: RetryPolicy::default(),
    };
    let first = d_m2td_fault_tolerant(
        &x1,
        &x2,
        1,
        &[3, 3, 3],
        opts,
        &engine,
        Phase3Strategy::ChunkPartition,
        &chaos,
        Some(&store),
    )
    .unwrap();
    assert_bitwise_equal(&reference, &first, "corrupting run");
    let injected = m2td::obs::snapshot()
        .counter("fault.ckpt_corruptions_injected")
        .unwrap_or(0);
    assert_eq!(injected, 2, "both phase records should have been damaged");

    // The next run finds damaged records: quarantine, recompute, same bits.
    let recovered = d_m2td_fault_tolerant(
        &x1,
        &x2,
        1,
        &[3, 3, 3],
        opts,
        &engine,
        Phase3Strategy::ChunkPartition,
        &FaultConfig::none(),
        Some(&store),
    )
    .unwrap();
    assert!(!recovered.phase1.resumed && !recovered.phase2.resumed);
    assert_bitwise_equal(&reference, &recovered, "recovery run");
    assert!(
        m2td::obs::snapshot()
            .counter("guard.ckpt_quarantined")
            .unwrap_or(0)
            >= 2
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn uninstalled_guard_changes_nothing_and_emits_no_counters() {
    let _l = lock();
    // Reference result with the guard fully installed (healthy data, so
    // no policy ever fires).
    let (x1, x2) = sub_tensors();
    let guarded = {
        let _g = Installed::guard(GuardConfig::with_policy(GuardPolicy::Fail));
        m2td_decompose(&x1, &x2, 1, &[3, 3, 3], M2tdOptions::default()).unwrap()
    };
    assert!(!m2td::guard::installed());

    // Uninstalled run under telemetry: bitwise-identical result, zero
    // guard activity. This pins the uninstalled fast path — every guard
    // entry point bails on one relaxed atomic load before touching the
    // registry, so no `guard.*` counter can exist.
    m2td::obs::install();
    m2td::obs::reset();
    let _cleanup = Installed;
    let plain = m2td_decompose(&x1, &x2, 1, &[3, 3, 3], M2tdOptions::default()).unwrap();
    assert_eq!(
        guarded.tucker.core.as_slice(),
        plain.tucker.core.as_slice(),
        "a healthy guarded run must be bitwise identical to an unguarded one"
    );
    assert!(plain.guard.is_none(), "no budget installed, no verdict");
    let snap = m2td::obs::snapshot();
    assert!(
        snap.counters_with_prefix("guard.").is_empty(),
        "uninstalled guard emitted counters: {:?}",
        snap.counters_with_prefix("guard.")
    );
}

#[test]
fn acceptance_budget_separates_healthy_from_unhealthy() {
    let _l = lock();
    let (x1, x2) = sub_tensors();
    // Generous budget: healthy.
    {
        let _g = Installed::guard(GuardConfig::DEFAULT.with_error_budget(10.0));
        let d = m2td_decompose(&x1, &x2, 1, &[3, 3, 3], M2tdOptions::default()).unwrap();
        let v = d.guard.expect("verdict expected");
        assert!(v.healthy);
        assert!(v.relative_error.is_finite());
    }
    // Impossible budget: the decomposition still completes (the verdict is
    // a report, not a policy), but the run is marked unhealthy.
    {
        let _g = Installed::guard_and_obs(GuardConfig::DEFAULT.with_error_budget(1e-15));
        let d = m2td_decompose(&x1, &x2, 1, &[3, 3, 3], M2tdOptions::default()).unwrap();
        let v = d.guard.expect("verdict expected");
        assert!(!v.healthy);
        assert_eq!(
            m2td::obs::snapshot().counter("guard.budget_exceeded"),
            Some(1)
        );
    }
}
