//! Property-based invariants spanning the workspace crates.

use m2td::core::{m2td_decompose, row_select, M2tdOptions};
use m2td::linalg::Matrix;
use m2td::sampling::{
    GridSampling, PfPartition, RandomSampling, SamplingScheme, SliceSampling, SubSystem,
};
use m2td::stitch::{stitch, StitchKind};
use m2td::tensor::{hosvd_sparse, DenseTensor, Shape, SparseTensor};
use proptest::prelude::*;
use proptest::strategy::ValueTree;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a random small tensor shape (2–4 modes of extent 2–5).
fn shape_strategy() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(2usize..=5, 2..=4)
}

/// Strategy: a random sparse tensor over `dims` with values in ±10 and a
/// random subset of cells occupied.
fn sparse_strategy(dims: Vec<usize>) -> impl Strategy<Value = SparseTensor> {
    let total = Shape::new(&dims).num_elements();
    let cells = prop::collection::btree_set(0..total, 1..=total.min(40));
    (cells, prop::collection::vec(-10.0f64..10.0, 40)).prop_map(move |(cells, vals)| {
        let entries: Vec<(Vec<usize>, f64)> = cells
            .into_iter()
            .enumerate()
            .map(|(i, lin)| (Shape::new(&dims).multi_index(lin), vals[i % vals.len()]))
            .collect();
        SparseTensor::from_entries(&dims, &entries).expect("generated entries are valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn unfold_gram_matches_explicit_gram(dims in shape_strategy()) {
        let t = sparse_strategy(dims.clone());
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let t = t.new_tree(&mut runner).unwrap().current();
        for mode in 0..dims.len() {
            let fast = t.unfold_gram(mode).unwrap();
            let explicit = t.unfold(mode).unwrap().gram_rows();
            let diff = fast.sub(&explicit).unwrap().frobenius_norm();
            prop_assert!(diff < 1e-9, "mode {mode} gram diff {diff}");
        }
    }

    #[test]
    fn hosvd_reconstruction_error_is_bounded(dims in shape_strategy()) {
        let t = sparse_strategy(dims.clone());
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let t = t.new_tree(&mut runner).unwrap().current();
        let ranks: Vec<usize> = dims.iter().map(|&d| d.min(2)).collect();
        let tucker = hosvd_sparse(&t, &ranks).unwrap();
        let dense = t.to_dense().unwrap();
        let err = tucker.relative_error(&dense).unwrap();
        // HOSVD of any tensor never exceeds the energy of the tensor
        // itself (projection onto orthonormal bases).
        prop_assert!(err <= 1.0 + 1e-9, "relative error {err} > 1");
        // Full-rank HOSVD is exact.
        let full: Vec<usize> = dims.clone();
        let exact = hosvd_sparse(&t, &full).unwrap();
        prop_assert!(exact.relative_error(&dense).unwrap() < 1e-8);
    }

    #[test]
    fn stitch_join_entry_count_and_values(
        p_dim in 2usize..5,
        f1_dim in 2usize..5,
        f2_dim in 2usize..5,
        seed in 0u64..1000,
    ) {
        // Fully dense sub-tensors: join count must be exactly P * E1 * E2
        // and every value must be the average of its sources.
        let mk = |dims: &[usize], offset: f64| {
            let shape = Shape::new(dims);
            let entries: Vec<(Vec<usize>, f64)> = (0..shape.num_elements())
                .map(|l| (shape.multi_index(l), offset + l as f64))
                .collect();
            SparseTensor::from_entries(dims, &entries).unwrap()
        };
        let x1 = mk(&[p_dim, f1_dim], seed as f64);
        let x2 = mk(&[p_dim, f2_dim], -(seed as f64));
        let (j, report) = stitch(&x1, &x2, 1, StitchKind::Join).unwrap();
        prop_assert_eq!(j.nnz(), p_dim * f1_dim * f2_dim);
        prop_assert_eq!(report.shared_pivot_configs, p_dim);
        for (idx, v) in j.iter() {
            let v1 = x1.get(&[idx[0], idx[1]]).unwrap();
            let v2 = x2.get(&[idx[0], idx[2]]).unwrap();
            prop_assert!((v - 0.5 * (v1 + v2)).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_join_is_superset_with_consistent_values(
        dims in (2usize..4, 2usize..5, 2usize..5),
    ) {
        let (p, f1, f2) = dims;
        let t1 = sparse_strategy(vec![p, f1]);
        let t2 = sparse_strategy(vec![p, f2]);
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let x1 = t1.new_tree(&mut runner).unwrap().current();
        let x2 = t2.new_tree(&mut runner).unwrap().current();
        let (j, _) = stitch(&x1, &x2, 1, StitchKind::Join).unwrap();
        let (zj, _) = stitch(&x1, &x2, 1, StitchKind::ZeroJoin).unwrap();
        prop_assert!(zj.nnz() >= j.nnz());
        for (idx, v) in j.iter() {
            prop_assert_eq!(zj.get(&idx), Some(v));
        }
    }

    #[test]
    fn sampling_plans_are_valid_and_within_budget(
        dims in prop::collection::vec(3usize..6, 3..=5),
        budget_frac in 0.05f64..0.9,
        seed in 0u64..500,
    ) {
        let total: usize = dims.iter().product();
        let budget = ((total as f64 * budget_frac) as usize).max(1);
        let mut rng = StdRng::seed_from_u64(seed);
        for scheme in [
            &RandomSampling as &dyn SamplingScheme,
            &GridSampling,
            &SliceSampling,
        ] {
            let plan = scheme.plan(&dims, budget, &mut rng).unwrap();
            prop_assert!(plan.len() <= budget, "{} overshot budget", scheme.name());
            let mut seen = std::collections::HashSet::new();
            for cell in &plan {
                prop_assert_eq!(cell.len(), dims.len());
                for (i, d) in cell.iter().zip(dims.iter()) {
                    prop_assert!(i < d);
                }
                prop_assert!(seen.insert(cell.clone()), "duplicate cell");
            }
        }
    }

    #[test]
    fn pf_partition_plans_pin_fixed_modes(
        pivot in 0usize..5,
        p_frac in 0.3f64..1.0,
        e_frac in 0.3f64..1.0,
        seed in 0u64..500,
    ) {
        let dims = [4usize, 4, 4, 4, 4];
        let defaults = [2usize, 2, 2, 2, 2];
        let partition = PfPartition::balanced(5, pivot).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for which in [SubSystem::First, SubSystem::Second] {
            let plan = partition
                .plan_subsystem(&dims, &defaults, which, p_frac, e_frac, &mut rng)
                .unwrap();
            let (p, e) = partition.cell_counts(&dims, which, p_frac, e_frac).unwrap();
            prop_assert_eq!(plan.len(), p * e);
            for cell in &plan {
                for &m in partition.fixed_modes(which) {
                    prop_assert_eq!(cell[m], defaults[m]);
                }
            }
        }
    }

    #[test]
    fn row_select_output_energy_dominates_inputs(
        rows in 1usize..8,
        cols in 1usize..5,
        seed in 0u64..1000,
    ) {
        let u1 = Matrix::from_fn(rows, cols, |i, j| {
            (((seed as usize + i * 31 + j * 7) % 97) as f64 - 48.0) / 48.0
        });
        let u2 = Matrix::from_fn(rows, cols, |i, j| {
            (((seed as usize * 3 + i * 17 + j * 13) % 89) as f64 - 44.0) / 44.0
        });
        let u = row_select(&u1, &u2).unwrap();
        for i in 0..rows {
            let expected = u1.row_norm(i).max(u2.row_norm(i));
            prop_assert!((u.row_norm(i) - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn permute_modes_preserves_norm_and_inverts(dims in shape_strategy()) {
        let t = DenseTensor::from_fn(&dims, |idx| {
            idx.iter().enumerate().map(|(n, &i)| ((n + 1) * (i + 2)) as f64).sum::<f64>().sin()
        });
        // A rotation permutation and its inverse.
        let n = dims.len();
        let perm: Vec<usize> = (0..n).map(|i| (i + 1) % n).collect();
        let inv: Vec<usize> = (0..n).map(|i| (i + n - 1) % n).collect();
        let p = t.permute_modes(&perm).unwrap();
        prop_assert!((p.frobenius_norm() - t.frobenius_norm()).abs() < 1e-12);
        let back = p.permute_modes(&inv).unwrap();
        prop_assert_eq!(back, t);
    }

    #[test]
    fn m2td_core_energy_bounded_by_join_energy(
        p_dim in 3usize..5,
        f_dim in 3usize..5,
    ) {
        // With orthonormal factors (CONCAT), the core's energy cannot
        // exceed the join tensor's energy.
        let mk = |dims: &[usize], phase: f64| {
            let shape = Shape::new(dims);
            let entries: Vec<(Vec<usize>, f64)> = (0..shape.num_elements())
                .map(|l| (shape.multi_index(l), (l as f64 * 0.37 + phase).sin() + 1.1))
                .collect();
            SparseTensor::from_entries(dims, &entries).unwrap()
        };
        let x1 = mk(&[p_dim, f_dim], 0.0);
        let x2 = mk(&[p_dim, f_dim], 1.0);
        let opts = M2tdOptions {
            combine: m2td::core::PivotCombine::Concat,
            projection: m2td::core::CoreProjection::Transpose,
            ..M2tdOptions::default()
        };
        let ranks = [2usize, 2, 2];
        let d = m2td_decompose(&x1, &x2, 1, &ranks, opts).unwrap();
        let (join, _) = stitch(&x1, &x2, 1, StitchKind::Join).unwrap();
        prop_assert!(
            d.tucker.core.frobenius_norm() <= join.frobenius_norm() * (1.0 + 1e-9),
            "core energy {} exceeds join energy {}",
            d.tucker.core.frobenius_norm(),
            join.frobenius_norm()
        );
    }
}
