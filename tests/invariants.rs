//! Property-style invariants spanning the workspace crates.
//!
//! The offline build has no `proptest`, so each property loops over a
//! fixed set of seeds and draws its inputs from the in-tree seeded RNG —
//! deterministic, shrink-free, but the same invariants.

use m2td::core::{m2td_decompose, row_select, M2tdOptions};
use m2td::linalg::Matrix;
use m2td::sampling::{
    GridSampling, PfPartition, RandomSampling, SamplingScheme, SliceSampling, SubSystem,
};
use m2td::stitch::{stitch, StitchKind};
use m2td::tensor::{hosvd_sparse, DenseTensor, Shape, SparseTensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 48;

/// A random small tensor shape: 2–4 modes of extent 2–5.
fn rand_shape(rng: &mut StdRng) -> Vec<usize> {
    let order = rng.gen_range(2usize..5);
    (0..order).map(|_| rng.gen_range(2usize..6)).collect()
}

/// A random sparse tensor over `dims` with values in ±10 and a random
/// subset of cells occupied.
fn rand_sparse(rng: &mut StdRng, dims: &[usize]) -> SparseTensor {
    let shape = Shape::new(dims);
    let total = shape.num_elements();
    let want = rng.gen_range(1usize..total.min(40) + 1);
    let mut cells = std::collections::BTreeSet::new();
    while cells.len() < want {
        cells.insert(rng.gen_range(0usize..total));
    }
    let entries: Vec<(Vec<usize>, f64)> = cells
        .into_iter()
        .map(|lin| (shape.multi_index(lin), rng.gen_range(-10.0..10.0)))
        .collect();
    SparseTensor::from_entries(dims, &entries).expect("generated entries are valid")
}

#[test]
fn unfold_gram_matches_explicit_gram() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let dims = rand_shape(&mut rng);
        let t = rand_sparse(&mut rng, &dims);
        for mode in 0..dims.len() {
            let fast = t.unfold_gram(mode).unwrap();
            let explicit = t.unfold(mode).unwrap().gram_rows();
            let diff = fast.sub(&explicit).unwrap().frobenius_norm();
            assert!(diff < 1e-9, "mode {mode} gram diff {diff}");
        }
    }
}

#[test]
fn hosvd_reconstruction_error_is_bounded() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let dims = rand_shape(&mut rng);
        let t = rand_sparse(&mut rng, &dims);
        let ranks: Vec<usize> = dims.iter().map(|&d| d.min(2)).collect();
        let tucker = hosvd_sparse(&t, &ranks).unwrap();
        let dense = t.to_dense().unwrap();
        let err = tucker.relative_error(&dense).unwrap();
        // HOSVD of any tensor never exceeds the energy of the tensor
        // itself (projection onto orthonormal bases).
        assert!(err <= 1.0 + 1e-9, "relative error {err} > 1");
        // Full-rank HOSVD is exact.
        let exact = hosvd_sparse(&t, &dims).unwrap();
        assert!(exact.relative_error(&dense).unwrap() < 1e-8);
    }
}

#[test]
fn stitch_join_entry_count_and_values() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let p_dim = rng.gen_range(2usize..5);
        let f1_dim = rng.gen_range(2usize..5);
        let f2_dim = rng.gen_range(2usize..5);
        let offset = rng.gen_range(0.0..1000.0);
        // Fully dense sub-tensors: join count must be exactly P * E1 * E2
        // and every value must be the average of its sources.
        let mk = |dims: &[usize], offset: f64| {
            let shape = Shape::new(dims);
            let entries: Vec<(Vec<usize>, f64)> = (0..shape.num_elements())
                .map(|l| (shape.multi_index(l), offset + l as f64))
                .collect();
            SparseTensor::from_entries(dims, &entries).unwrap()
        };
        let x1 = mk(&[p_dim, f1_dim], offset);
        let x2 = mk(&[p_dim, f2_dim], -offset);
        let (j, report) = stitch(&x1, &x2, 1, StitchKind::Join).unwrap();
        assert_eq!(j.nnz(), p_dim * f1_dim * f2_dim);
        assert_eq!(report.shared_pivot_configs, p_dim);
        for (idx, v) in j.iter() {
            let v1 = x1.get(&[idx[0], idx[1]]).unwrap();
            let v2 = x2.get(&[idx[0], idx[2]]).unwrap();
            assert!((v - 0.5 * (v1 + v2)).abs() < 1e-12);
        }
    }
}

#[test]
fn zero_join_is_superset_with_consistent_values() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = rng.gen_range(2usize..4);
        let f1 = rng.gen_range(2usize..5);
        let f2 = rng.gen_range(2usize..5);
        let x1 = rand_sparse(&mut rng, &[p, f1]);
        let x2 = rand_sparse(&mut rng, &[p, f2]);
        let (j, _) = stitch(&x1, &x2, 1, StitchKind::Join).unwrap();
        let (zj, _) = stitch(&x1, &x2, 1, StitchKind::ZeroJoin).unwrap();
        assert!(zj.nnz() >= j.nnz());
        for (idx, v) in j.iter() {
            assert_eq!(zj.get(&idx), Some(v));
        }
    }
}

#[test]
fn sampling_plans_are_valid_and_within_budget() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let order = rng.gen_range(3usize..6);
        let dims: Vec<usize> = (0..order).map(|_| rng.gen_range(3usize..6)).collect();
        let budget_frac = rng.gen_range(0.05..0.9);
        let total: usize = dims.iter().product();
        let budget = ((total as f64 * budget_frac) as usize).max(1);
        for scheme in [
            &RandomSampling as &dyn SamplingScheme,
            &GridSampling,
            &SliceSampling,
        ] {
            let plan = scheme.plan(&dims, budget, &mut rng).unwrap();
            assert!(plan.len() <= budget, "{} overshot budget", scheme.name());
            let mut seen = std::collections::HashSet::new();
            for cell in &plan {
                assert_eq!(cell.len(), dims.len());
                for (i, d) in cell.iter().zip(dims.iter()) {
                    assert!(i < d);
                }
                assert!(seen.insert(cell.clone()), "duplicate cell");
            }
        }
    }
}

#[test]
fn pf_partition_plans_pin_fixed_modes() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let pivot = rng.gen_range(0usize..5);
        let p_frac = rng.gen_range(0.3..1.0);
        let e_frac = rng.gen_range(0.3..1.0);
        let dims = [4usize, 4, 4, 4, 4];
        let defaults = [2usize, 2, 2, 2, 2];
        let partition = PfPartition::balanced(5, pivot).unwrap();
        for which in [SubSystem::First, SubSystem::Second] {
            let plan = partition
                .plan_subsystem(&dims, &defaults, which, p_frac, e_frac, &mut rng)
                .unwrap();
            let (p, e) = partition.cell_counts(&dims, which, p_frac, e_frac).unwrap();
            assert_eq!(plan.len(), p * e);
            for cell in &plan {
                for &m in partition.fixed_modes(which) {
                    assert_eq!(cell[m], defaults[m]);
                }
            }
        }
    }
}

#[test]
fn row_select_output_energy_dominates_inputs() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows = rng.gen_range(1usize..8);
        let cols = rng.gen_range(1usize..5);
        let u1 = Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0));
        let u2 = Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0));
        let u = row_select(&u1, &u2).unwrap();
        for i in 0..rows {
            let expected = u1.row_norm(i).max(u2.row_norm(i));
            assert!((u.row_norm(i) - expected).abs() < 1e-12);
        }
    }
}

#[test]
fn permute_modes_preserves_norm_and_inverts() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let dims = rand_shape(&mut rng);
        let t = DenseTensor::from_fn(&dims, |idx| {
            idx.iter()
                .enumerate()
                .map(|(n, &i)| ((n + 1) * (i + 2)) as f64)
                .sum::<f64>()
                .sin()
        });
        // A rotation permutation and its inverse.
        let n = dims.len();
        let perm: Vec<usize> = (0..n).map(|i| (i + 1) % n).collect();
        let inv: Vec<usize> = (0..n).map(|i| (i + n - 1) % n).collect();
        let p = t.permute_modes(&perm).unwrap();
        assert!((p.frobenius_norm() - t.frobenius_norm()).abs() < 1e-12);
        let back = p.permute_modes(&inv).unwrap();
        assert_eq!(back, t);
    }
}

#[test]
fn m2td_core_energy_bounded_by_join_energy() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let p_dim = rng.gen_range(3usize..5);
        let f_dim = rng.gen_range(3usize..5);
        // With orthonormal factors (CONCAT), the core's energy cannot
        // exceed the join tensor's energy.
        let mk = |dims: &[usize], phase: f64| {
            let shape = Shape::new(dims);
            let entries: Vec<(Vec<usize>, f64)> = (0..shape.num_elements())
                .map(|l| (shape.multi_index(l), (l as f64 * 0.37 + phase).sin() + 1.1))
                .collect();
            SparseTensor::from_entries(dims, &entries).unwrap()
        };
        let x1 = mk(&[p_dim, f_dim], 0.0);
        let x2 = mk(&[p_dim, f_dim], 1.0);
        let opts = M2tdOptions {
            combine: m2td::core::PivotCombine::Concat,
            projection: m2td::core::CoreProjection::Transpose,
            ..M2tdOptions::default()
        };
        let ranks = [2usize, 2, 2];
        let d = m2td_decompose(&x1, &x2, 1, &ranks, opts).unwrap();
        let (join, _) = stitch(&x1, &x2, 1, StitchKind::Join).unwrap();
        assert!(
            d.tucker.core.frobenius_norm() <= join.frobenius_norm() * (1.0 + 1e-9),
            "core energy {} exceeds join energy {}",
            d.tucker.core.frobenius_norm(),
            join.frobenius_norm()
        );
    }
}

/// The full M2TD decomposition must be invariant to the global thread
/// cap: the pivot-side join and every parallel kernel under it are
/// deterministic, so the Tucker cores must agree within 1e-10 Frobenius
/// across `M2TD_THREADS` = 1, 2 and 8.
#[test]
fn m2td_decomposition_invariant_to_thread_count() {
    for seed in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(3000 + seed);
        let p_dim = rng.gen_range(3usize..6);
        let f_dim = rng.gen_range(3usize..6);
        // Fully occupied sub-tensors with random values: guarantees the
        // two sides share pivot configurations so the join is non-empty.
        let mut mk = |dims: &[usize]| {
            let shape = Shape::new(dims);
            let entries: Vec<(Vec<usize>, f64)> = (0..shape.num_elements())
                .map(|l| (shape.multi_index(l), rng.gen_range(-10.0..10.0)))
                .collect();
            SparseTensor::from_entries(dims, &entries).unwrap()
        };
        let x1 = mk(&[p_dim, f_dim]);
        let x2 = mk(&[p_dim, f_dim]);
        let ranks = [2usize.min(p_dim), 2usize.min(f_dim), 2usize.min(f_dim)];

        m2td::par::set_max_threads(1);
        let serial = m2td_decompose(&x1, &x2, 1, &ranks, M2tdOptions::default()).unwrap();

        for threads in [2usize, 8] {
            m2td::par::set_max_threads(threads);
            let par = m2td_decompose(&x1, &x2, 1, &ranks, M2tdOptions::default()).unwrap();
            let diff = par
                .tucker
                .core
                .sub(&serial.tucker.core)
                .unwrap()
                .frobenius_norm();
            assert!(diff < 1e-10, "core drift {diff} t={threads} seed={seed}");
        }
        m2td::par::set_max_threads(0);
    }
}
