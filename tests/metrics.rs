//! The observability layer's cross-crate contracts:
//!
//! * a metrics snapshot taken after a real decomposition round-trips
//!   through `m2td-json` losslessly;
//! * span counts and counter values are independent of the physical
//!   thread count (times of course are not);
//! * the `mr.*` counters mirrored into the registry by
//!   `MapReduce::run_with_faults` agree with the [`TaskCounters`] the
//!   caller receives;
//! * with no subscriber installed, nothing is recorded and
//!   [`RunReport::metrics`] stays `None`.
//!
//! The registry is process-global, so every test serializes on one lock
//! and resets the registry while holding it.

use m2td::core::{m2td_decompose, M2tdOptions};
use m2td::dist::{d_m2td_fault_tolerant, FaultConfig, MapReduce, Phase3Strategy};
use m2td::fault::{FaultPlan, RetryPolicy};
use m2td::json::{FromJson, ToJson};
use m2td::obs::MetricsSnapshot;
use m2td::tensor::{Shape, SparseTensor};
use std::sync::Mutex;

static OBS_LOCK: Mutex<()> = Mutex::new(());

const K: usize = 1;
const RANKS: [usize; 3] = [2, 2, 2];

/// Two small dense analytic sub-tensors sharing a pivot mode.
fn sub_tensors() -> (SparseTensor, SparseTensor) {
    let f = |p: usize, a: usize, b: usize| {
        ((p as f64) * 0.7).sin() * ((a as f64) * 0.3 + 1.0) * ((b as f64) * 0.2 + 1.0) + 0.1
    };
    let full = |g: &dyn Fn(&[usize]) -> f64| {
        let dims = [5, 4];
        let shape = Shape::new(&dims);
        let entries: Vec<(Vec<usize>, f64)> = (0..shape.num_elements())
            .map(|l| {
                let idx = shape.multi_index(l);
                let v = g(&idx);
                (idx, v)
            })
            .collect();
        SparseTensor::from_entries(&dims, &entries).unwrap()
    };
    let x1 = full(&|i: &[usize]| f(i[0], i[1], 2));
    let x2 = full(&|i: &[usize]| f(i[0], 2, i[1]));
    (x1, x2)
}

fn serial_run_snapshot() -> MetricsSnapshot {
    let (x1, x2) = sub_tensors();
    m2td_decompose(&x1, &x2, K, &RANKS, M2tdOptions::default()).unwrap();
    m2td::obs::snapshot()
}

#[test]
fn snapshot_from_real_run_round_trips_through_json() {
    let _guard = OBS_LOCK.lock().unwrap();
    m2td::obs::install();
    m2td::obs::reset();
    m2td::obs::counter_add("test.marker", 3);
    m2td::obs::gauge_set("test.gauge", 0.125);
    let snap = serial_run_snapshot();
    m2td::obs::uninstall();

    assert!(snap.span("phase1.decompose").is_some());
    assert!(snap.span("phase2.stitch").is_some());
    assert!(snap.span("phase3.core").is_some());
    assert!(snap.span("linalg.eig").is_some());

    let text = snap.to_json().to_pretty();
    let parsed = m2td::json::Json::parse(&text).expect("snapshot JSON must parse");
    let back = MetricsSnapshot::from_json(&parsed).expect("snapshot JSON must deserialize");
    // Rust's f64 Display is shortest-round-trip, so equality is exact.
    assert_eq!(snap, back, "snapshot changed across a JSON round trip");
}

#[test]
fn span_counts_and_counters_are_thread_count_invariant() {
    let _guard = OBS_LOCK.lock().unwrap();
    m2td::obs::install();

    m2td::par::set_max_threads(1);
    m2td::obs::reset();
    let serial = serial_run_snapshot();

    m2td::par::set_max_threads(4);
    m2td::obs::reset();
    let wide = serial_run_snapshot();

    m2td::par::set_max_threads(0);
    m2td::obs::uninstall();

    // Times and nesting depth legitimately differ across thread counts
    // (a closure run on a fresh worker thread starts a new span stack);
    // the *structure* — which spans fired how often, and every counter —
    // must not.
    assert_eq!(
        serial.span_counts(),
        wide.span_counts(),
        "span counts changed with the thread count"
    );
    assert_eq!(
        serial.counters, wide.counters,
        "counter values changed with the thread count"
    );
    assert!(!serial.spans.is_empty());
}

#[test]
fn mapreduce_counters_match_returned_task_counters() {
    let _guard = OBS_LOCK.lock().unwrap();
    m2td::obs::install();
    m2td::obs::reset();

    let (x1, x2) = sub_tensors();
    let faults = FaultConfig {
        plan: FaultPlan::new(11, 0.5, 0.3, 20.0),
        policy: RetryPolicy::default(),
    };
    let run = d_m2td_fault_tolerant(
        &x1,
        &x2,
        K,
        &RANKS,
        M2tdOptions::default(),
        &MapReduce::new(3),
        Phase3Strategy::ChunkPartition,
        &faults,
        None,
    )
    .unwrap();
    let snap = m2td::obs::snapshot();
    m2td::obs::uninstall();

    let totals = run.total_tasks();
    assert!(
        totals.kills() > 0,
        "seed injected no kills — test is vacuous"
    );
    let counter = |name: &str| snap.counter(name).unwrap_or(0);
    assert_eq!(counter("mr.map_attempts"), totals.map_attempts as u64);
    assert_eq!(counter("mr.map_kills"), totals.map_kills as u64);
    assert_eq!(counter("mr.reduce_attempts"), totals.reduce_attempts as u64);
    assert_eq!(counter("mr.reduce_kills"), totals.reduce_kills as u64);
    assert_eq!(counter("mr.retries"), totals.kills() as u64);
    assert_eq!(counter("mr.stragglers"), totals.stragglers as u64);
    assert_eq!(
        counter("mr.speculative_launches"),
        totals.speculative_launches as u64
    );
    let lost = snap.gauge("mr.virtual_lost_secs").unwrap_or(0.0);
    assert!(
        (lost - totals.virtual_lost_secs).abs() < 1e-9,
        "virtual lost time drifted: {lost} vs {}",
        totals.virtual_lost_secs
    );
    // The fault plan's own injection counters agree with what the engine
    // observed (every injected kill is a killed attempt and vice versa).
    assert_eq!(counter("fault.kills_injected"), totals.kills() as u64);
    // One mapreduce.job span per phase job (3 for ChunkPartition).
    assert_eq!(
        snap.spans
            .iter()
            .filter(|s| s.label.starts_with("mapreduce.job"))
            .map(|s| s.count)
            .sum::<u64>(),
        3
    );
}

/// Both sparse TTM directions carry a span (the forward kernel was
/// historically uninstrumented), and the TTM-chain planner records its
/// span and op-count/size gauges.
#[test]
fn ttm_kernels_and_plan_are_instrumented() {
    use m2td::linalg::Matrix;
    use m2td::tensor::{ttm_sparse, ttm_sparse_transposed, TtmPlan, Workspace};

    let _guard = OBS_LOCK.lock().unwrap();
    m2td::obs::install();
    m2td::obs::reset();

    let dims = [5usize, 4, 3];
    let shape = Shape::new(&dims);
    let entries: Vec<(Vec<usize>, f64)> = (0..shape.num_elements())
        .filter(|l| l % 2 == 0)
        .map(|l| (shape.multi_index(l), (l as f64 * 0.37).sin() + 0.2))
        .collect();
    let x = SparseTensor::from_entries(&dims, &entries).unwrap();
    let u = Matrix::from_fn(5, 2, |i, j| ((i * 2 + j) as f64 * 0.3).cos());
    ttm_sparse(&x, 0, &u.transpose()).unwrap();
    ttm_sparse_transposed(&x, 0, &u).unwrap();

    let ranks = [2usize, 2, 2];
    let factors: Vec<Matrix> = dims
        .iter()
        .zip(ranks.iter())
        .map(|(&d, &r)| Matrix::from_fn(d, r, |i, j| ((i + 3 * j) as f64 * 0.21).sin()))
        .collect();
    let plan = TtmPlan::new(&dims, &ranks).unwrap();
    plan.execute_sparse(&x, &factors, &mut Workspace::new())
        .unwrap();

    let snap = m2td::obs::snapshot();
    m2td::obs::uninstall();

    assert!(
        snap.span("tensor.ttm_sparse_fwd{mode=0}").is_some(),
        "forward sparse TTM span missing"
    );
    assert!(
        snap.span("tensor.ttm_sparse{mode=0}").is_some(),
        "transposed sparse TTM span missing"
    );
    assert!(snap.span("ttm.plan").is_some(), "planner span missing");
    let madds = snap.gauge("ttm.plan_madds").unwrap_or(-1.0);
    assert_eq!(
        madds,
        plan.predicted_madds() as f64,
        "ttm.plan_madds gauge disagrees with the plan's op-count model"
    );
    assert!(
        snap.gauge("ttm.intermediate_elems").unwrap_or(0.0) > 0.0,
        "intermediate-size gauge missing"
    );
}

/// Acceptance criterion: on the bench shapes, the planner's chain does no
/// more FP multiply-adds than the fixed natural order — asserted through
/// the `ttm.plan_madds` gauge each execution records.
#[test]
fn planner_chain_madds_never_exceed_fixed_order() {
    use m2td::linalg::Matrix;
    use m2td::tensor::{CoreOrdering, TtmPlan, Workspace};

    let _guard = OBS_LOCK.lock().unwrap();
    m2td::obs::install();

    for (dims, ranks) in [
        (vec![12usize, 12, 12, 12], vec![4usize, 4, 4, 4]),
        (vec![32, 16, 8], vec![4, 2, 2]),
    ] {
        let shape = Shape::new(&dims);
        let entries: Vec<(Vec<usize>, f64)> = (0..shape.num_elements())
            .filter(|l| l % 3 == 0)
            .map(|l| (shape.multi_index(l), (l as f64 * 0.11).sin()))
            .collect();
        let x = SparseTensor::from_entries(&dims, &entries).unwrap();
        let factors: Vec<Matrix> = dims
            .iter()
            .zip(ranks.iter())
            .map(|(&d, &r)| Matrix::from_fn(d, r, |i, j| ((i * 7 + j) as f64 * 0.17).cos()))
            .collect();

        let gauge_for = |ordering: CoreOrdering| {
            m2td::obs::reset();
            let plan = TtmPlan::with_ordering(&dims, &ranks, ordering).unwrap();
            plan.execute_sparse(&x, &factors, &mut Workspace::new())
                .unwrap();
            m2td::obs::snapshot()
                .gauge("ttm.plan_madds")
                .expect("plan execution must record its op count")
        };
        let planned = gauge_for(CoreOrdering::BestShrinkFirst);
        let natural = gauge_for(CoreOrdering::Natural);
        assert!(
            planned <= natural,
            "planner does {planned} madds vs {natural} natural for {dims:?}/{ranks:?}"
        );
    }
    m2td::obs::uninstall();
}

#[test]
fn without_subscriber_nothing_is_recorded_and_reports_carry_no_metrics() {
    let _guard = OBS_LOCK.lock().unwrap();
    m2td::obs::uninstall();
    m2td::obs::reset();

    let (x1, x2) = sub_tensors();
    let d = m2td_decompose(&x1, &x2, K, &RANKS, M2tdOptions::default()).unwrap();
    assert!(!d.tucker.core.as_slice().is_empty());

    let snap = m2td::obs::snapshot();
    assert!(snap.spans.is_empty(), "spans recorded while uninstalled");
    assert!(
        snap.counters.is_empty(),
        "counters recorded while uninstalled"
    );
    assert!(snap.gauges.is_empty(), "gauges recorded while uninstalled");
    assert!(m2td::obs::snapshot_if_installed().is_none());
}

/// The randomized routes are instrumented: the Gaussian range-finder and
/// the per-mode sketched Gram each carry a `sketch.*` span, and the
/// sketch width plus the measured relative error land as gauges.
#[test]
fn sketch_routes_are_instrumented() {
    use m2td::linalg::Matrix;
    use m2td::sketch::{range_finder, SketchConfig};

    let _guard = OBS_LOCK.lock().unwrap();
    m2td::obs::install();
    m2td::obs::reset();

    let a = Matrix::from_fn(48, 12, |i, j| {
        ((i * 5 + j) as f64 * 0.21).sin() + 0.01 * ((i * j) as f64 * 0.7).cos()
    });
    let cfg = SketchConfig::with_size(6).with_seed(9);
    range_finder(&a, 3, &cfg).unwrap();

    // A tall mode-0 with full fibers: the shape where the sketched Gram's
    // op-count plan says "sketch", so `phase_gram` actually takes the
    // randomized route while the config is installed.
    let dims = [32usize, 50];
    let shape = Shape::new(&dims);
    let entries: Vec<(Vec<usize>, f64)> = (0..shape.num_elements())
        .map(|l| (shape.multi_index(l), (l as f64 * 0.13).sin() + 0.3))
        .collect();
    let x = SparseTensor::from_entries(&dims, &entries).unwrap();
    m2td::sketch::install(cfg);
    m2td::tensor::phase_gram(&x, 0).unwrap();
    m2td::sketch::uninstall();

    let snap = m2td::obs::snapshot();
    m2td::obs::uninstall();

    assert!(
        snap.span("sketch.range_finder").is_some(),
        "range-finder span missing"
    );
    assert!(
        snap.span("sketch.gram{mode=0}").is_some(),
        "sketched Gram span missing: {:?}",
        snap.spans.iter().map(|s| &s.label).collect::<Vec<_>>()
    );
    assert!(
        snap.gauge("sketch.size").unwrap_or(0.0) >= 1.0,
        "sketch.size gauge missing"
    );
    let rel_err = snap.gauge("sketch.rel_err").unwrap_or(-1.0);
    assert!(
        rel_err.is_finite() && rel_err >= 0.0,
        "sketch.rel_err gauge missing or non-finite: {rel_err}"
    );
}
