//! Integration: decompose an ensemble, persist the model, reload it in a
//! "new session", and run the analyst-facing readings on it.

use m2td::core::analysis::{
    core_spectrum, dominant_interactions, mode_energy_profile, pattern_representatives,
    spectrum_energy_fraction,
};
use m2td::core::{m2td_decompose, M2tdOptions, Workbench, WorkbenchConfig};
use m2td::sim::systems::Sir;
use m2td::tensor::{load_json, save_json, TuckerDecomp};

fn workbench() -> Workbench<'static> {
    static SYS: Sir = Sir;
    let cfg = WorkbenchConfig {
        resolution: 5,
        time_steps: 5,
        t_end: 40.0,
        substeps: 8,
        rank: 3,
        seed: 99,
        noise_sigma: 0.0,
    };
    Workbench::new(&SYS, cfg).unwrap()
}

#[test]
fn decompose_save_load_analyze() {
    let w = workbench();
    let (x1, x2, partition) = w.subsystems(4, 1.0, 1.0, 1.0).unwrap();
    let ranks: Vec<usize> = partition
        .join_modes()
        .iter()
        .map(|&m| 3usize.min(w.full_dims()[m]))
        .collect();
    let d = m2td_decompose(&x1, &x2, partition.k(), &ranks, M2tdOptions::default()).unwrap();
    let acc_before = w.accuracy_join_order(&d.tucker, &partition).unwrap();

    // Persist and reload.
    let dir = std::env::temp_dir().join("m2td_persistence_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.json");
    save_json(&d.tucker, &path).unwrap();
    let loaded: TuckerDecomp = load_json(&path).unwrap();

    // The reloaded model scores identically.
    let acc_after = w.accuracy_join_order(&loaded, &partition).unwrap();
    assert!((acc_before - acc_after).abs() < 1e-12);

    // Analyst readings run on the reloaded model.
    for mode in 0..loaded.factors.len() {
        let profile = mode_energy_profile(&loaded, mode).unwrap();
        assert_eq!(profile.len(), loaded.factors[mode].rows());
        assert!(profile.iter().all(|&e| e.is_finite() && e >= 0.0));
    }
    let spectrum = core_spectrum(&loaded);
    assert!(!spectrum.is_empty());
    assert!(spectrum.windows(2).all(|w| w[0] >= w[1]));
    // The few strongest interactions carry most of the energy.
    let f = spectrum_energy_fraction(&loaded, 5);
    assert!(f > 0.5, "top-5 interactions carry only {f} of the energy");
    let top = dominant_interactions(&loaded, 3);
    assert!(!top.is_empty());
    assert_eq!(top[0].pattern.len(), loaded.factors.len());
    // Representatives index real rows.
    for mode in 0..loaded.factors.len() {
        for rep in pattern_representatives(&loaded, mode).unwrap() {
            assert!(rep < loaded.factors[mode].rows());
        }
    }

    // In-fill queries on the reloaded model agree with reconstruction.
    let recon = loaded.reconstruct().unwrap();
    let idx = vec![1usize, 2, 1, 0, 2];
    assert!((loaded.cell(&idx).unwrap() - recon.get(&idx)).abs() < 1e-12);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tampered_model_is_rejected_on_load() {
    let w = workbench();
    let (x1, x2, partition) = w.subsystems(4, 1.0, 1.0, 1.0).unwrap();
    let ranks: Vec<usize> = partition
        .join_modes()
        .iter()
        .map(|&m| 2usize.min(w.full_dims()[m]))
        .collect();
    let d = m2td_decompose(&x1, &x2, partition.k(), &ranks, M2tdOptions::default()).unwrap();

    let dir = std::env::temp_dir().join("m2td_persistence_tamper");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.json");
    save_json(&d.tucker, &path).unwrap();

    // Corrupt the core dims so factors no longer match.
    let text = std::fs::read_to_string(&path).unwrap();
    let tampered = text.replacen("2", "3", 1);
    std::fs::write(&path, tampered).unwrap();
    assert!(load_json::<TuckerDecomp>(&path).is_err());

    let _ = std::fs::remove_dir_all(&dir);
}
