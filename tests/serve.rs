//! Serving-path properties spanning the workspace crates.
//!
//! A resident [`ServeEngine`] fed one cell at a time must agree with a
//! batch decomposition of the same cells, and its published-snapshot
//! serving contract must make query answers bitwise invariant under
//! concurrency and refresh cadence.

use m2td::prelude::*;
use m2td::tensor::{hosvd_sparse_exact, Shape, SparseTensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 24;

/// A random small shape (2–4 modes, extents 2–5) with per-mode ranks
/// drawn in `1..=extent`.
fn rand_case(rng: &mut StdRng) -> (Vec<usize>, Vec<usize>) {
    let order = rng.gen_range(2usize..5);
    let dims: Vec<usize> = (0..order).map(|_| rng.gen_range(2usize..6)).collect();
    let ranks: Vec<usize> = dims.iter().map(|&d| rng.gen_range(1usize..d + 1)).collect();
    (dims, ranks)
}

/// A random dense-ish cell set (~70% occupancy) over `dims`, in a
/// shuffled absorption order.
fn rand_cells(rng: &mut StdRng, dims: &[usize]) -> Vec<(Vec<usize>, f64)> {
    let shape = Shape::new(dims);
    let mut cells: Vec<(Vec<usize>, f64)> = Vec::new();
    for l in 0..shape.num_elements() {
        if rng.gen_range(0.0..1.0) < 0.7 {
            cells.push((shape.multi_index(l), rng.gen_range(-10.0..10.0)));
        }
    }
    if cells.is_empty() {
        cells.push((shape.multi_index(0), 1.0));
    }
    // Fisher–Yates shuffle: absorption order must not matter.
    for i in (1..cells.len()).rev() {
        cells.swap(i, rng.gen_range(0usize..i + 1));
    }
    cells
}

/// Absorb-one-by-one then refresh must reproduce the batch
/// decomposition of the same cells: every in-fill prediction matches to
/// ≤ 1e-9 relative error (the PR's acceptance bound).
#[test]
fn resident_engine_matches_batch_decomposition() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5E27E + seed);
        let (dims, ranks) = rand_case(&mut rng);
        let cells = rand_cells(&mut rng, &dims);

        let engine = ServeEngine::new(ServeConfig::default().with_staleness(0));
        engine.register("p", &dims, &ranks).unwrap();
        for (idx, v) in &cells {
            engine.absorb("p", idx, *v).unwrap();
        }
        engine.refresh("p").unwrap();

        let sparse = SparseTensor::from_entries(&dims, &cells).unwrap();
        let batch = hosvd_sparse_exact(&sparse, &ranks).unwrap();

        let shape = Shape::new(&dims);
        for l in 0..shape.num_elements() {
            let idx = shape.multi_index(l);
            let served = engine.query_cell("p", &idx).unwrap();
            let direct = batch.cell(&idx).unwrap();
            let tol = 1e-9 * (1.0 + direct.abs());
            assert!(
                (served - direct).abs() <= tol,
                "seed {seed} dims {dims:?} ranks {ranks:?} cell {idx:?}: \
                 served {served} vs batch {direct}"
            );
        }
    }
}

/// Refresh cadence must not change the final model: absorbing through a
/// small staleness window (with automatic intermediate refreshes) and
/// absorbing with refreshes disabled land on bitwise-identical
/// predictions once both have refreshed over the full cell set.
#[test]
fn refresh_cadence_does_not_change_the_final_model() {
    for seed in 0..CASES / 2 {
        let mut rng = StdRng::seed_from_u64(0xCADE + seed);
        let (dims, ranks) = rand_case(&mut rng);
        let cells = rand_cells(&mut rng, &dims);

        let auto = ServeEngine::new(ServeConfig::default().with_staleness(3));
        let manual = ServeEngine::new(ServeConfig::default().with_staleness(0));
        for e in [&auto, &manual] {
            e.register("p", &dims, &ranks).unwrap();
            for (idx, v) in &cells {
                e.absorb("p", idx, *v).unwrap();
            }
            e.refresh("p").unwrap();
        }

        let shape = Shape::new(&dims);
        for l in 0..shape.num_elements() {
            let idx = shape.multi_index(l);
            let a = auto.query_cell("p", &idx).unwrap();
            let m = manual.query_cell("p", &idx).unwrap();
            assert_eq!(
                a.to_bits(),
                m.to_bits(),
                "seed {seed} cell {idx:?}: auto-refresh {a} vs manual {m}"
            );
        }
    }
}

/// The published-snapshot contract: queries issued from 8 concurrent
/// threads return bitwise the same predictions as a single thread, cache
/// warm or cold.
#[test]
fn concurrent_queries_are_bitwise_identical() {
    let dims = [6usize, 5, 4];
    let ranks = [3usize, 2, 2];
    let shape = Shape::new(&dims);
    let engine = ServeEngine::new(ServeConfig::default().with_staleness(0));
    engine.register("p", &dims, &ranks).unwrap();
    for l in 0..shape.num_elements() {
        if l % 3 != 1 {
            engine
                .absorb("p", &shape.multi_index(l), ((l as f64) * 0.61).cos() + 0.5)
                .unwrap();
        }
    }
    engine.refresh("p").unwrap();

    let queries: Vec<Vec<usize>> = (0..shape.num_elements())
        .map(|l| shape.multi_index(l))
        .collect();
    let baseline: Vec<u64> = queries
        .iter()
        .map(|q| engine.query_cell("p", q).unwrap().to_bits())
        .collect();

    let results: Vec<Vec<u64>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let eng = &engine;
                let qs = &queries;
                s.spawn(move || {
                    // Each thread starts at a different offset so cache
                    // hits and misses interleave across threads.
                    (0..qs.len())
                        .map(|k| {
                            let q = &qs[(k + t * 7) % qs.len()];
                            (
                                eng.query_cell("p", q).unwrap().to_bits(),
                                (k + t * 7) % qs.len(),
                            )
                        })
                        .collect::<Vec<(u64, usize)>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap()
                    .into_iter()
                    .map(|(bits, at)| {
                        assert_eq!(bits, baseline[at], "thread answer diverged at {at}");
                        bits
                    })
                    .collect()
            })
            .collect()
    });
    assert_eq!(results.len(), 8);

    // Batched queries agree with the same single-cell answers.
    let batched = engine.query_cells("p", &queries).unwrap();
    for (b, base) in batched.iter().zip(&baseline) {
        assert_eq!(b.to_bits(), *base);
    }
}

/// Slice queries answer whole hyperplanes through the batched TTM path
/// and must agree with cell-by-cell evaluation.
#[test]
fn slice_queries_agree_with_cellwise_evaluation() {
    let dims = [5usize, 4, 3];
    let shape = Shape::new(&dims);
    let engine = ServeEngine::new(ServeConfig::default().with_staleness(0));
    engine.register("p", &dims, &[2, 2, 2]).unwrap();
    for l in 0..shape.num_elements() {
        if l % 2 == 0 {
            engine
                .absorb("p", &shape.multi_index(l), ((l as f64) * 0.37).sin() + 1.0)
                .unwrap();
        }
    }
    engine.refresh("p").unwrap();

    for mode in 0..dims.len() {
        for fixed in 0..dims[mode] {
            // The slice keeps its order: extent 1 in the fixed mode.
            let slice = engine.query_slice("p", mode, fixed).unwrap();
            assert_eq!(slice.dims()[mode], 1);
            let slice_shape = Shape::new(slice.dims());
            for sl in 0..slice_shape.num_elements() {
                let sub = slice_shape.multi_index(sl);
                let mut idx = sub.clone();
                idx[mode] = fixed;
                let direct = engine.query_cell("p", &idx).unwrap();
                let via_slice = slice.as_slice()[sl];
                assert!(
                    (via_slice - direct).abs() <= 1e-10 * (1.0 + direct.abs()),
                    "mode {mode} fixed {fixed} sub {sub:?}: {via_slice} vs {direct}"
                );
            }
        }
    }
}

/// The serving path reports itself: spans and counters for absorb,
/// refresh and query all land in the telemetry snapshot.
#[test]
fn serving_spans_and_counters_reach_the_snapshot() {
    m2td::obs::install();
    let dims = [4usize, 3, 3];
    let shape = Shape::new(&dims);
    let engine = ServeEngine::new(ServeConfig::default().with_staleness(0));
    engine.register("obs", &dims, &[2, 2, 2]).unwrap();
    for l in 0..shape.num_elements() {
        engine
            .absorb("obs", &shape.multi_index(l), (l as f64).sqrt())
            .unwrap();
    }
    engine.refresh("obs").unwrap();
    for l in 0..shape.num_elements() {
        engine.query_cell("obs", &shape.multi_index(l)).unwrap();
    }
    engine.query_slice("obs", 0, 1).unwrap();

    let snap = m2td::obs::snapshot();
    for span in ["serve.absorb", "serve.refresh", "serve.query"] {
        assert!(
            snap.spans.iter().any(|s| s.label == span && s.count > 0),
            "span {span} missing from the snapshot"
        );
    }
    for counter in [
        "serve.absorbed_cells",
        "serve.refreshes",
        "serve.cell_queries",
        "serve.slice_queries",
    ] {
        assert!(
            snap.counters.iter().any(|(n, v)| n == counter && *v > 0),
            "counter {counter} missing from the snapshot"
        );
    }
}
