//! Crash-recovery contract for the durable serve engine.
//!
//! The contract under test: **restarting at any seeded kill point and
//! recovering yields, for every served cell, the bitwise-identical value
//! an uninterrupted run would have served.** The crash matrix sweeps
//! pinned kill points spanning all four operation streams (absorb entry,
//! refresh entry, post-WAL-append, mid-snapshot-write) plus seeded
//! rate-based chaos across multiple seeds; further cases cover a
//! bit-flipped snapshot (quarantine + longer WAL replay, not a panic) and
//! mid-log WAL corruption (read-only degraded mode, previous state keeps
//! serving).

use m2td::fault::{CorruptionKind, CrashOp, FaultPlan};
use m2td::serve::{DurabilityConfig, ServeConfig, ServeEngine, ServeError, SnapshotStore};
use m2td::tensor::{Shape, TensorError};
use std::path::{Path, PathBuf};

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("m2td_serve_crash").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn config() -> ServeConfig {
    ServeConfig::default().with_staleness(4)
}

fn durability(dir: &Path) -> DurabilityConfig {
    DurabilityConfig::new(dir)
        .with_wal_sync_every(2)
        .with_snapshot_every(5)
        .with_snapshot_keep(2)
}

/// One scripted engine operation.
#[derive(Debug, Clone)]
enum Op {
    Register(&'static str, Vec<usize>, Vec<usize>),
    Absorb(&'static str, Vec<usize>, f64),
    Refresh(&'static str),
    Remove(&'static str),
}

/// A deterministic workload exercising every WAL record kind: two
/// ensembles, interleaved absorbs (including values that only survive
/// bit-cast serialization), manual refreshes, and a remove + re-register
/// of the same name. Staleness 4 also triggers automatic refreshes, and
/// snapshot cadence 5 interleaves several snapshot writes.
fn script() -> Vec<Op> {
    let mut ops = vec![
        Op::Register("a", vec![3, 4, 2], vec![2, 2, 1]),
        Op::Register("b", vec![4, 4], vec![2, 2]),
    ];
    let sa = Shape::new(&[3, 4, 2]);
    let sb = Shape::new(&[4, 4]);
    for l in 0..10usize {
        ops.push(Op::Absorb(
            "a",
            sa.multi_index(l * 2),
            (l as f64 * 0.61).sin() + 0.1 + 0.2,
        ));
        if l < 8 {
            ops.push(Op::Absorb(
                "b",
                sb.multi_index(l * 2),
                (l as f64) * 0.31 + 1.0,
            ));
        }
        if l == 5 {
            ops.push(Op::Refresh("b"));
        }
    }
    ops.push(Op::Remove("b"));
    ops.push(Op::Register("b", vec![3, 3], vec![1, 1]));
    for j in 0..4usize {
        ops.push(Op::Absorb("b", vec![j / 3, j % 3], j as f64 + 0.5));
    }
    ops.push(Op::Refresh("a"));
    ops.push(Op::Refresh("b"));
    ops
}

fn apply(engine: &ServeEngine, op: &Op) -> Result<(), ServeError> {
    match op {
        Op::Register(name, dims, ranks) => engine.register(name, dims, ranks),
        Op::Absorb(name, index, value) => engine.absorb(name, index, *value).map(|_| ()),
        Op::Refresh(name) => engine.refresh(name).map(|_| ()),
        Op::Remove(name) => engine.deregister(name),
    }
}

/// Runs the script against a durable engine in `dir`. On an injected
/// crash the engine is dropped (its memory state discarded — exactly what
/// a process kill does), recovered from disk without the injector, and
/// the interrupted operation retried; a retry that reports the operation
/// already took durable effect (duplicate cell, already/not registered)
/// is skipped. Returns the final engine and how many crashes fired.
fn run_script(dir: &Path, crashes: DurabilityConfig) -> (ServeEngine, usize) {
    let (mut engine, report) = ServeEngine::recover(config(), crashes).unwrap();
    assert!(!report.degraded);
    let mut crashed = 0usize;
    for op in script() {
        let mut retrying = false;
        loop {
            match apply(&engine, &op) {
                Ok(()) => break,
                Err(ServeError::CrashInjected { .. }) => {
                    crashed += 1;
                    assert!(crashed < 50, "crash loop");
                    let (recovered, rep) = ServeEngine::recover(config(), durability(dir)).unwrap();
                    assert!(!rep.degraded, "clean crash must not degrade: {rep:?}");
                    engine = recovered;
                    retrying = true;
                }
                Err(
                    ServeError::Tensor(TensorError::DuplicateEntry { .. })
                    | ServeError::AlreadyRegistered { .. }
                    | ServeError::UnknownEnsemble { .. },
                ) if retrying => break, // the op was durable before the crash
                Err(e) => panic!("script op {op:?} failed: {e}"),
            }
        }
    }
    (engine, crashed)
}

/// Full-grid bitwise comparison of two engines.
fn assert_bitwise_equal(reference: &ServeEngine, recovered: &ServeEngine, label: &str) {
    assert_eq!(reference.names(), recovered.names(), "{label}: names");
    for name in reference.names() {
        let want = reference.stats(&name).unwrap();
        let got = recovered.stats(&name).unwrap();
        assert_eq!(want, got, "{label}: stats for '{name}'");
        for idx in Shape::new(&want.dims).iter_indices() {
            match (
                reference.query_cell(&name, &idx),
                recovered.query_cell(&name, &idx),
            ) {
                (Ok(a), Ok(b)) => assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{label}: '{name}' cell {idx:?}: {a} vs {b}"
                ),
                (Err(ServeError::NoModel { .. }), Err(ServeError::NoModel { .. })) => {}
                (a, b) => panic!("{label}: '{name}' cell {idx:?}: {a:?} vs {b:?}"),
            }
        }
    }
}

fn uninterrupted_reference(tag: &str) -> ServeEngine {
    let dir = tmp_dir(&format!("ref_{tag}"));
    let (engine, crashed) = run_script(&dir, durability(&dir));
    assert_eq!(crashed, 0);
    engine
}

/// The pinned crash matrix: kill points across all four operation
/// streams, each at several positions in its stream. Every recovered run
/// must serve every cell bitwise-identically to the uninterrupted run.
#[test]
fn pinned_kill_points_recover_bitwise_across_all_streams() {
    let reference = uninterrupted_reference("pinned");
    let matrix: Vec<(CrashOp, u64)> = vec![
        (CrashOp::Absorb, 0),
        (CrashOp::Absorb, 7),
        (CrashOp::Absorb, 15),
        (CrashOp::Refresh, 0),
        (CrashOp::Refresh, 2),
        (CrashOp::WalAppend, 1),
        (CrashOp::WalAppend, 8),
        (CrashOp::WalAppend, 20),
        (CrashOp::SnapshotWrite, 5),
        (CrashOp::SnapshotWrite, 10),
        (CrashOp::SnapshotWrite, 20),
    ];
    for (op, sequence) in matrix {
        let tag = format!("pin_{op}_{sequence}");
        let dir = tmp_dir(&tag);
        let (engine, crashed) = run_script(&dir, durability(&dir).with_crash_point(op, sequence));
        assert!(
            crashed >= 1,
            "kill point {op}#{sequence} never fired — matrix entry is dead"
        );
        assert_bitwise_equal(&reference, &engine, &tag);
        // The recovered state must also be *live*: it keeps absorbing and
        // refreshing normally after the restart.
        engine.absorb("a", &[2, 3, 1], 9.25).unwrap();
        engine.refresh("a").unwrap();
    }
}

/// Seeded rate-based chaos: each seed picks its own kill points from the
/// per-operation streams. One crash per run (the retried run is clean),
/// three seeds minimum per the acceptance bar.
#[test]
fn seeded_crash_chaos_recovers_bitwise() {
    let reference = uninterrupted_reference("chaos");
    let mut fired = 0usize;
    for seed in [11u64, 2222, 333_333, 44_444_444] {
        let tag = format!("chaos_{seed}");
        let dir = tmp_dir(&tag);
        let plan = FaultPlan::new(seed, 0.0, 0.0, 0.0).with_crash_rate(0.08);
        let (engine, crashed) = run_script(&dir, durability(&dir).with_crash_plan(plan));
        fired += crashed;
        assert_bitwise_equal(&reference, &engine, &tag);
    }
    assert!(fired >= 3, "chaos sweep too quiet: only {fired} crashes");
}

/// A bit-flipped snapshot is quarantined and recovery falls back to an
/// older snapshot plus a longer WAL replay — never a panic, and the
/// recovered engine still matches the uninterrupted run bitwise.
#[test]
fn corrupted_snapshot_quarantines_and_replays_wal() {
    let reference = uninterrupted_reference("bitflip");
    let dir = tmp_dir("bitflip_victim");
    let (engine, _) = run_script(&dir, durability(&dir));
    drop(engine);
    let store = SnapshotStore::new(&dir, 2).unwrap();
    assert!(store.corrupt_newest(CorruptionKind::BitFlip).unwrap());

    let (recovered, report) = ServeEngine::recover(config(), durability(&dir)).unwrap();
    assert_eq!(report.quarantined_snapshots, 1);
    assert!(!report.degraded, "an older snapshot still anchors replay");
    assert!(
        report.replayed > 0,
        "fallback must replay the WAL tail the lost snapshot covered"
    );
    assert_bitwise_equal(&reference, &recovered, "bitflip");
    let quarantined: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .flatten()
        .filter(|e| {
            e.file_name()
                .to_string_lossy()
                .starts_with("snapshot.quarantined.")
        })
        .collect();
    assert_eq!(quarantined.len(), 1, "damage is preserved for post-mortem");
}

/// Mid-log WAL corruption destroys acknowledged history: the engine must
/// recover what it can, serve it read-only, and refuse writes with a
/// typed error instead of silently reconstructing a hole in the timeline.
#[test]
fn mid_log_wal_corruption_degrades_to_read_only() {
    let dir = tmp_dir("degraded");
    // No snapshots: the WAL alone carries the history, so damaging its
    // middle provably loses acknowledged operations.
    let dur = DurabilityConfig::new(&dir)
        .with_wal_sync_every(0)
        .with_snapshot_every(0);
    let (engine, _) = ServeEngine::recover(config(), dur.clone()).unwrap();
    engine.register("a", &[3, 3], &[2, 2]).unwrap();
    for l in 0..6usize {
        engine.absorb("a", &[l / 3, l % 3], l as f64 + 0.5).unwrap();
    }
    engine.refresh("a").unwrap();
    drop(engine);

    // Flip bytes inside an interior record (not the tail).
    let wal_path = dir.join("wal.log");
    let mut lines: Vec<String> = std::fs::read_to_string(&wal_path)
        .unwrap()
        .lines()
        .map(str::to_string)
        .collect();
    assert!(lines.len() >= 4);
    lines[2] = lines[2].replace(':', ";");
    std::fs::write(&wal_path, lines.join("\n")).unwrap();

    let (recovered, report) = ServeEngine::recover(config(), dur).unwrap();
    assert!(report.degraded, "mid-log damage must degrade: {report:?}");
    assert!(recovered.is_degraded());
    // The prefix before the hole still serves...
    let stats = recovered.stats("a").unwrap();
    assert_eq!(stats.nnz, 1, "only the records before the hole replayed");
    // ...and reads are *not* blocked (no model replayed → NoModel, not
    // Degraded)...
    assert!(matches!(
        recovered.query_cell("a", &[0, 0]),
        Err(ServeError::NoModel { .. })
    ));
    // ...but every mutation is refused with the typed error.
    assert!(matches!(
        recovered.absorb("a", &[2, 2], 1.0),
        Err(ServeError::Degraded)
    ));
    assert!(matches!(recovered.refresh("a"), Err(ServeError::Degraded)));
    assert!(matches!(
        recovered.register("z", &[2, 2], &[1, 1]),
        Err(ServeError::Degraded)
    ));
    assert!(matches!(
        recovered.deregister("a"),
        Err(ServeError::Degraded)
    ));
    assert!(matches!(recovered.snapshot(), Err(ServeError::Degraded)));
}
