//! Cross-crate contracts of the randomized (sketched) decomposition
//! routes:
//!
//! * sketched HOSVD stays within the default error budget across seeds
//!   and fill densities, for both the Gaussian and MACH policies;
//! * a fixed sketch seed makes the randomized routes **bitwise**
//!   deterministic across physical thread counts — the sketch RNG is
//!   counter-based, so evaluation order never reaches the bits;
//! * an impossible budget trips the guard gate: the public entry point
//!   silently falls back to the exact route and bumps the
//!   `sketch.fallbacks` counter — without touching any `guard.*`
//!   counter, which chaos CI reserves for real numerical events.
//!
//! Sketch/guard/obs state is process-global, so every test that installs
//! any of them serializes on one lock and uninstalls before releasing.

use m2td::sketch::{SketchConfig, SketchPolicy, DEFAULT_SKETCH_BUDGET};
use m2td::tensor::{hosvd_sparse, hosvd_sparse_exact, hosvd_sparse_sketched, Shape, SparseTensor};
use std::sync::Mutex;

static GLOBAL_STATE_LOCK: Mutex<()> = Mutex::new(());

const DIMS: [usize; 3] = [10, 9, 8];
const RANKS: [usize; 3] = [3, 3, 3];

/// A sparse tensor over `DIMS` with a **separable** sparsity mask (keep
/// cells where `i1 % a == 0 && i2 % b == 0`) so the kept tensor stays
/// genuinely low-rank: the mask multiplies into the per-mode factors of
/// the rank-2 signal instead of shredding it. `(a, b) = (3, 3)` keeps
/// ~12.5% of the cells, `(1, 3)` keeps ~37.5%.
fn sparse_fill(a: usize, b: usize) -> SparseTensor {
    let shape = Shape::new(&DIMS);
    let entries: Vec<(Vec<usize>, f64)> = (0..shape.num_elements())
        .map(|l| shape.multi_index(l))
        .filter(|idx| idx[1] % a == 0 && idx[2] % b == 0)
        .map(|idx| {
            let (i0, i1, i2) = (idx[0] as f64, idx[1] as f64, idx[2] as f64);
            let v = (i0 * 0.4).sin() * (i1 * 0.3 + 1.0) * (i2 * 0.2 + 1.0)
                + 0.6 * (i0 * 0.9).cos() * (i1 * 0.5).sin() * (i2 * 0.35).cos()
                + 0.05 * ((idx[0] * (idx[1] + 2) * (idx[2] + 1)) as f64 * 0.9).sin();
            (idx.clone(), v)
        })
        .collect();
    SparseTensor::from_entries(&DIMS, &entries).unwrap()
}

/// True reconstruction error, measured independently of the free-identity
/// `rel_err` the sketched route reports.
fn true_rel_err(t: &m2td::tensor::TuckerDecomp, x: &SparseTensor) -> f64 {
    let dense = x.to_dense().unwrap();
    t.relative_error(&dense).unwrap()
}

#[test]
fn sketched_hosvd_within_budget_across_seeds_and_fills() {
    // (a, b) mask periods: ~12.5% and ~37.5% fill.
    for (a, b) in [(3usize, 3usize), (1, 3)] {
        let fill = format!("(1/{a} x 1/{b})");
        let x = sparse_fill(a, b);
        for seed in [1u64, 2, 3] {
            for policy in [SketchPolicy::Gaussian, SketchPolicy::Mach { keep: 0.5 }] {
                let cfg = SketchConfig::with_size(6)
                    .with_seed(seed)
                    .with_policy(policy);
                let (t, rel_err) = hosvd_sparse_sketched(&x, &RANKS, &cfg).unwrap();
                assert!(
                    rel_err.is_finite() && rel_err <= DEFAULT_SKETCH_BUDGET,
                    "fill {fill} seed {seed}: reported rel_err {rel_err} above budget"
                );
                let measured = true_rel_err(&t, &x);
                assert!(
                    measured <= DEFAULT_SKETCH_BUDGET,
                    "fill {fill} seed {seed}: true rel_err {measured} above budget"
                );
            }
        }
    }
}

#[test]
fn fixed_seed_is_bitwise_identical_across_thread_counts() {
    let _guard = GLOBAL_STATE_LOCK.lock().unwrap();
    let x = sparse_fill(1, 3);
    for policy in [
        SketchPolicy::Gaussian,
        SketchPolicy::MachBiased { keep: 0.5 },
    ] {
        let cfg = SketchConfig::with_size(6).with_seed(42).with_policy(policy);
        let mut reference: Option<(Vec<f64>, Vec<Vec<f64>>)> = None;
        for threads in [1usize, 2, 8] {
            m2td::par::set_max_threads(threads);
            let (t, _) = hosvd_sparse_sketched(&x, &RANKS, &cfg).unwrap();
            let core: Vec<f64> = t.core.as_slice().to_vec();
            let factors: Vec<Vec<f64>> = t
                .factors
                .iter()
                .map(|f| (0..f.rows()).flat_map(|i| f.row(i).to_vec()).collect())
                .collect();
            match &reference {
                None => reference = Some((core, factors)),
                Some((c0, f0)) => {
                    // Bitwise: exact float equality, no tolerance.
                    assert_eq!(c0, &core, "core diverged at t={threads}");
                    assert_eq!(f0, &factors, "factors diverged at t={threads}");
                }
            }
        }
    }
    m2td::par::set_max_threads(0);
}

#[test]
fn impossible_budget_falls_back_to_exact_and_counts_it() {
    let _guard = GLOBAL_STATE_LOCK.lock().unwrap();
    m2td::obs::install();
    m2td::obs::reset();
    // A budget no rank-3 truncation of this tensor can meet, so the
    // sketched attempt is always rejected at the gate.
    m2td::guard::install(m2td::guard::GuardConfig::DEFAULT.with_error_budget(1e-12));
    m2td::sketch::install(SketchConfig::with_size(6).with_seed(7));

    let x = sparse_fill(1, 3);
    let via_dispatch = hosvd_sparse(&x, &RANKS).unwrap();

    m2td::sketch::uninstall();
    m2td::guard::uninstall();
    let exact = hosvd_sparse_exact(&x, &RANKS).unwrap();
    let snap = m2td::obs::snapshot();
    m2td::obs::reset();

    // The fallback is the exact route, bit for bit.
    assert_eq!(via_dispatch.core.as_slice(), exact.core.as_slice());
    assert!(
        snap.counter("sketch.fallbacks").unwrap_or(0) >= 1,
        "budget violation must bump sketch.fallbacks: {:?}",
        snap.counters
    );
    // Sketch rejections are not numerical events; guard.* counters are
    // reserved for corruption/instability detections (chaos CI asserts
    // clean runs keep them at zero).
    assert!(
        !snap.counters.iter().any(|(k, _)| k.starts_with("guard.")),
        "sketch fallback must not bump guard counters: {:?}",
        snap.counters
    );
}
